//! The simulation kernel: actor slab, event loop, and the [`Context`]
//! through which actors touch the world.
//!
//! ## Sharding model
//!
//! A simulation can be partitioned across *shards* (see `crates/simshard`):
//! each shard thread builds the **whole** world identically (replicated
//! build), but only hosts the actors whose node the shard's locality filter
//! claims. Remote actors become *ghosts*: they occupy their slot index (so
//! ids, lanes and connection numbering stay identical on every shard) but
//! hold no behaviour and never execute. Messages addressed to a ghost are
//! handed to the [`RemoteRouter`] carrying their full deterministic key
//! `(at, lane, lane_seq)`; the owning shard injects them verbatim, so the
//! merged event history is byte-identical to a serial run.
//!
//! A few actors (fault driver, samplers) are *replicated*: they run
//! identically on every shard and only touch shard-local state. Their
//! self-sends are accounted only on the *primary* shard so that summed
//! [`KernelStats`] match a serial run exactly.
//!
//! Every randomness draw goes through a per-actor RNG stream derived from
//! `(seed, actor index)` — never a shared sequential stream — so the draw
//! sequence an actor sees is independent of how actors interleave across
//! shards.

use crate::actor::{Actor, ActorId};
use crate::event::{EventQueue, EventTypeStat, Payload, ScheduledEvent, WallAccum, EXTERNAL_LANE};
use crate::rng::SimRng;
use crate::service::ServiceMap;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::time::Instant;

/// Kernel run statistics: a snapshot built on demand from the always-on
/// event accounting inside the kernel and its queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events dispatched so far.
    pub events_processed: u64,
    /// Events dropped because their target actor was never registered or
    /// has been deactivated.
    pub events_dropped: u64,
    /// Total events ever scheduled (monotonic).
    pub scheduled_total: u64,
    /// Of `scheduled_total`, how many were timer self-sends
    /// ([`Context::timer`]).
    pub timer_scheduled: u64,
    /// Of `scheduled_total`, how many were ordinary messages.
    pub message_scheduled: u64,
    /// High-watermark of pending events.
    pub peak_queue_depth: u64,
    /// Per-payload-type counters, sorted by scheduled count descending then
    /// name.
    pub by_type: Vec<EventTypeStat>,
    /// Queue depth sampled over virtual time, roughly once per virtual
    /// second (coarsened adaptively so the vector stays bounded).
    pub depth_samples: Vec<(SimTime, u64)>,
}

impl KernelStats {
    /// Merge per-shard statistics into the totals a serial run would have
    /// produced. All event counters sum exactly (cross-shard events are
    /// scheduled on the sender shard and executed on the receiver shard;
    /// replicated actors are accounted on the primary shard only).
    ///
    /// Two fields are *shard-local observations*, not conserved quantities,
    /// and are excluded from [`determinism_digest`](Self::determinism_digest):
    /// `peak_queue_depth` (merged as the max over shards — a serial run
    /// holding every shard's events in one heap generally peaks higher) and
    /// `depth_samples` (taken from the first shard).
    pub fn merged(parts: &[KernelStats]) -> KernelStats {
        let mut out = KernelStats::default();
        let mut by_name: BTreeMap<String, EventTypeStat> = BTreeMap::new();
        for p in parts {
            out.events_processed += p.events_processed;
            out.events_dropped += p.events_dropped;
            out.scheduled_total += p.scheduled_total;
            out.timer_scheduled += p.timer_scheduled;
            out.message_scheduled += p.message_scheduled;
            out.peak_queue_depth = out.peak_queue_depth.max(p.peak_queue_depth);
            for t in &p.by_type {
                let e = by_name.entry(t.name.clone()).or_default();
                e.name = t.name.clone();
                e.scheduled += t.scheduled;
                e.executed += t.executed;
                e.dropped += t.dropped;
                e.timers += t.timers;
            }
        }
        if let Some(first) = parts.first() {
            out.depth_samples = first.depth_samples.clone();
        }
        let mut rows: Vec<EventTypeStat> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.scheduled.cmp(&a.scheduled).then(a.name.cmp(&b.name)));
        out.by_type = rows;
        out
    }

    /// Canonical text of every *conserved* kernel counter — the quantities
    /// that must be byte-identical between serial and sharded runs of the
    /// same seed. Excludes `peak_queue_depth` and `depth_samples`, which
    /// measure shard-local heap shape rather than simulation behaviour.
    pub fn determinism_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "processed={} dropped={} scheduled={} timers={} messages={}",
            self.events_processed,
            self.events_dropped,
            self.scheduled_total,
            self.timer_scheduled,
            self.message_scheduled
        );
        for t in &self.by_type {
            let _ = writeln!(
                s,
                "type {} scheduled={} executed={} dropped={} timers={}",
                t.name, t.scheduled, t.executed, t.dropped, t.timers
            );
        }
        s
    }
}

/// Wall-clock totals for the kernel's own hot paths, populated only after
/// [`Simulation::enable_hotpath_timing`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelHotpath {
    /// Time inside actor `handle` callbacks (event dispatch).
    pub dispatch: WallAccum,
    /// Time pushing onto the event heap.
    pub queue_push: WallAccum,
    /// Time popping from the event heap.
    pub queue_pop: WallAccum,
}

impl KernelHotpath {
    /// Sum another shard's hot-path totals into this one.
    pub fn merge(&mut self, other: &KernelHotpath) {
        self.dispatch.merge(other.dispatch);
        self.queue_push.merge(other.queue_push);
        self.queue_pop.merge(other.queue_pop);
    }
}

/// Depth-over-virtual-time sampling stops coarsening only once the sample
/// vector would exceed this many entries; past it, every other sample is
/// dropped and the interval doubles.
const DEPTH_SAMPLE_CAP: usize = 2048;

/// Why a `run_*` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event-count limit was hit (runaway protection).
    EventLimit,
}

/// An event addressed to an actor hosted on another shard, carrying its
/// sender-side deterministic key so the owning shard can enqueue it exactly
/// where a serial run would have.
pub struct RemoteEnvelope {
    /// When the event fires.
    pub at: SimTime,
    /// Sender's scheduling lane.
    pub lane: u32,
    /// Sender's FIFO sequence within the lane.
    pub lane_seq: u64,
    /// Receiving actor (a ghost on the sending shard).
    pub target: ActorId,
    /// Message payload.
    pub payload: Payload,
    /// Static payload type name for receiver-side accounting, if known.
    pub type_name: Option<&'static str>,
}

/// Delivers [`RemoteEnvelope`]s to the shard owning `target_node`.
/// Installed by the shard executor; never consulted in serial runs (no
/// ghosts exist).
pub trait RemoteRouter {
    /// Route one envelope. `target_node` is the simulated node hosting the
    /// target actor.
    fn route(&mut self, env: RemoteEnvelope, target_node: u16);
}

/// Per-actor kernel bookkeeping for sharded runs.
#[derive(Debug, Clone, Copy, Default)]
struct ActorMeta {
    /// Actor lives on another shard; slot holds no behaviour here.
    ghost: bool,
    /// Actor runs identically on every shard (accounted on primary only).
    replicated: bool,
    /// Simulated node the actor was registered under, if declared.
    node: Option<u16>,
}

/// Lazily-derived per-actor RNG streams. Stream `ix` is a pure function of
/// `(seed, ix)`, so an actor's draw sequence never depends on which other
/// actors ran before it — the property that makes randomness shard-invariant.
struct ActorRngs {
    seed: u64,
    streams: Vec<Option<SimRng>>,
}

impl ActorRngs {
    fn get(&mut self, ix: usize) -> &mut SimRng {
        if ix >= self.streams.len() {
            self.streams.resize_with(ix + 1, || None);
        }
        let seed = self.seed;
        self.streams[ix].get_or_insert_with(|| SimRng::new(seed).derive(ix as u64 + 1))
    }
}

type ActorSlot = Option<Box<dyn Actor>>;
type LocalityFn = Box<dyn Fn(u16) -> bool>;

/// A complete simulated world (or, in sharded runs, one shard's replica of
/// it — see the module docs).
pub struct Simulation {
    now: SimTime,
    queue: EventQueue,
    actors: Vec<ActorSlot>,
    meta: Vec<ActorMeta>,
    services: ServiceMap,
    actor_rngs: ActorRngs,
    events_processed: u64,
    events_dropped: u64,
    /// Events dispatched per actor (diagnostics / hot-actor tracing).
    dispatch_counts: Vec<u64>,
    depth_interval: SimDuration,
    next_depth_sample: SimTime,
    depth_samples: Vec<(SimTime, u64)>,
    dispatch_wall: Option<WallAccum>,
    started: bool,
    locality: Option<LocalityFn>,
    current_node: Option<u16>,
    primary: bool,
    router: Option<Box<dyn RemoteRouter>>,
}

impl Simulation {
    /// New empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            actors: Vec::new(),
            meta: Vec::new(),
            services: ServiceMap::new(),
            actor_rngs: ActorRngs {
                seed,
                streams: Vec::new(),
            },
            events_processed: 0,
            events_dropped: 0,
            dispatch_counts: Vec::new(),
            depth_interval: SimDuration::from_secs(1),
            next_depth_sample: SimTime::ZERO,
            depth_samples: Vec::new(),
            dispatch_wall: None,
            started: false,
            locality: None,
            current_node: None,
            primary: true,
            router: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics so far: a snapshot of the always-on event
    /// accounting (per-type counts, timer/message mix, queue-depth
    /// high-watermark and depth-over-time samples).
    pub fn stats(&self) -> KernelStats {
        let scheduled_total = self.queue.scheduled_total();
        let timer_scheduled = self.queue.timer_scheduled();
        KernelStats {
            events_processed: self.events_processed,
            events_dropped: self.events_dropped,
            scheduled_total,
            timer_scheduled,
            message_scheduled: scheduled_total - timer_scheduled,
            peak_queue_depth: self.queue.peak_depth() as u64,
            by_type: self.queue.type_stats(),
            depth_samples: self.depth_samples.clone(),
        }
    }

    /// Turn on wall-clock timing of the kernel's own hot paths (event
    /// dispatch and queue push/pop). Off by default; when off the only cost
    /// is one `Option` discriminant check per site.
    pub fn enable_hotpath_timing(&mut self) {
        if self.dispatch_wall.is_none() {
            self.dispatch_wall = Some(WallAccum::default());
        }
        self.queue.enable_wall_timing();
    }

    /// Wall-clock hot-path totals, if [`enable_hotpath_timing`] was called.
    ///
    /// [`enable_hotpath_timing`]: Simulation::enable_hotpath_timing
    pub fn hotpath(&self) -> Option<KernelHotpath> {
        let dispatch = self.dispatch_wall?;
        let (queue_push, queue_pop) = self.queue.wall_timing().unwrap_or_default();
        Some(KernelHotpath {
            dispatch,
            queue_push,
            queue_pop,
        })
    }

    /// Events dispatched to one actor so far.
    pub fn dispatch_count(&self, id: ActorId) -> u64 {
        self.dispatch_counts.get(id.index()).copied().unwrap_or(0)
    }

    /// The `n` busiest actors as `(id, name, events)`, descending.
    pub fn busiest_actors(&self, n: usize) -> Vec<(ActorId, String, u64)> {
        let mut rows: Vec<(ActorId, String, u64)> = self
            .dispatch_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(ix, &c)| {
                let id = ActorId::from_index(ix);
                let name = self.actors[ix]
                    .as_ref()
                    .map_or_else(|| "<retired>".to_owned(), |a| a.name().to_owned());
                (id, name, c)
            })
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Install the shard locality filter: `f(node)` answers "is this node
    /// hosted here?". From now on every [`add_actor`](Self::add_actor) must
    /// be preceded by [`on_node`](Self::on_node) (or use
    /// [`add_replicated_actor`](Self::add_replicated_actor)); actors on
    /// foreign nodes become ghosts.
    pub fn set_locality(&mut self, f: impl Fn(u16) -> bool + 'static) {
        self.locality = Some(Box::new(f));
    }

    /// Declare the simulated node that subsequently-registered actors live
    /// on (sticky until changed). Required between actors under sharding;
    /// optional (pure metadata) otherwise.
    pub fn on_node(&mut self, node: u16) {
        self.current_node = Some(node);
    }

    /// Whether a locality filter is installed (i.e. this world is one shard
    /// of a partitioned run — possibly a 1-shard one).
    pub fn is_sharded(&self) -> bool {
        self.locality.is_some()
    }

    /// Mark this shard as the accounting primary (shard 0). Replicated
    /// actors' events are only counted on the primary so that summed
    /// [`KernelStats`] equal a serial run. Serial worlds are primary.
    pub fn set_primary(&mut self, primary: bool) {
        self.primary = primary;
    }

    /// Install the cross-shard router consulted for messages to ghosts.
    pub fn set_router(&mut self, r: impl RemoteRouter + 'static) {
        self.router = Some(Box::new(r));
    }

    /// True if `id` is a ghost here (hosted by another shard).
    pub fn is_ghost(&self, id: ActorId) -> bool {
        self.meta.get(id.index()).is_some_and(|m| m.ghost)
    }

    /// The declared node of an actor, if any.
    pub fn actor_node(&self, id: ActorId) -> Option<u16> {
        self.meta.get(id.index()).and_then(|m| m.node)
    }

    /// Register an actor; returns its id. Actors registered before the
    /// first `run_*` call get `on_start` at t = 0 in registration order;
    /// actors spawned later (via [`Context::spawn`]) get it immediately.
    ///
    /// Under sharding the actor's node (from [`on_node`](Self::on_node))
    /// decides whether it is hosted here or becomes a ghost.
    pub fn add_actor(&mut self, actor: impl Actor + 'static) -> ActorId {
        let id = ActorId::from_index(self.actors.len());
        let (ghost, node) = match &self.locality {
            Some(f) => {
                let n = self.current_node.expect(
                    "sharded build: declare the actor's node with on_node(..) \
                     before add_actor (or use add_replicated_actor)",
                );
                (!f(n), Some(n))
            }
            None => (false, self.current_node),
        };
        self.meta.push(ActorMeta {
            ghost,
            replicated: false,
            node,
        });
        if ghost {
            self.actors.push(None);
        } else {
            self.actors.push(Some(Box::new(actor)));
            if self.started {
                self.start_actor(id);
            }
        }
        id
    }

    /// Register an actor that runs identically on *every* shard (e.g. the
    /// fault driver or a sampler whose state is shard-local). Never a
    /// ghost; its events are accounted on the primary shard only.
    pub fn add_replicated_actor(&mut self, actor: impl Actor + 'static) -> ActorId {
        let id = ActorId::from_index(self.actors.len());
        self.meta.push(ActorMeta {
            ghost: false,
            replicated: true,
            node: None,
        });
        self.actors.push(Some(Box::new(actor)));
        if self.started {
            self.start_actor(id);
        }
        id
    }

    /// Register a shared service.
    pub fn add_service<S: 'static>(&mut self, svc: S) {
        self.services.insert(svc);
    }

    /// Immutable access to a service (between runs; e.g. to read metrics).
    pub fn service<S: 'static>(&self) -> Option<&S> {
        self.services.get::<S>()
    }

    /// Mutable access to a service (between runs).
    pub fn service_mut<S: 'static>(&mut self) -> Option<&mut S> {
        self.services.get_mut::<S>()
    }

    /// Schedule a message from outside the actor system (e.g. test setup or
    /// experiment wiring). Uses the external scheduling lane.
    pub fn schedule(&mut self, delay: SimDuration, target: ActorId, payload: Payload) {
        let at = self.now + delay;
        self.schedule_external(at, target, payload);
    }

    /// Schedule at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.schedule_external(at, target, payload);
    }

    /// External-lane scheduling with ghost handling: a replicated build
    /// performs the same external schedule on every shard, so the lane
    /// counter advances everywhere (identical keys) but only the shard
    /// hosting the target enqueues and accounts the event.
    fn schedule_external(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let lane_seq = self.queue.next_lane_seq(EXTERNAL_LANE);
        let tmeta = self.meta.get(target.index()).copied().unwrap_or_default();
        if tmeta.ghost {
            return;
        }
        let type_ix = self.queue.intern_type(payload.as_ref().type_id(), None);
        if self.primary || !tmeta.replicated {
            self.queue.count_scheduled(type_ix, false);
        }
        self.queue.push_keyed(ScheduledEvent {
            at,
            lane: EXTERNAL_LANE,
            lane_seq,
            target,
            payload,
            type_ix,
        });
    }

    /// Inject an event that crossed the shard boundary. Its `scheduled`
    /// accounting happened on the sender shard; here it is only enqueued
    /// (and will be accounted as executed/dropped where it dispatches).
    pub fn inject_remote(&mut self, env: RemoteEnvelope) {
        debug_assert!(
            env.at >= self.now,
            "remote envelope arrived in this shard's past: lookahead violated"
        );
        let type_ix = self
            .queue
            .intern_type(env.payload.as_ref().type_id(), env.type_name);
        self.queue.push_keyed(ScheduledEvent {
            at: env.at,
            lane: env.lane,
            lane_seq: env.lane_seq,
            target: env.target,
            payload: env.payload,
            type_ix,
        });
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Time of the earliest pending event (the shard's contribution to the
    /// lower-bound-timestamp computation).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run `on_start` for every registered actor now (idempotent). The
    /// `run_*` methods do this lazily, but the shard executor must force
    /// it *before* the first lower-bound-timestamp round: `on_start`
    /// timers are part of the initial event population, and a shard whose
    /// only events come from them would otherwise report an empty queue.
    pub fn start(&mut self) {
        self.ensure_started();
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for ix in 0..self.actors.len() {
            self.start_actor(ActorId::from_index(ix));
        }
    }

    fn start_actor(&mut self, id: ActorId) {
        let Some(slot) = self.actors.get_mut(id.index()) else {
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            queue: &mut self.queue,
            services: &mut self.services,
            rngs: &mut self.actor_rngs,
            actors: &mut self.actors,
            meta: &mut self.meta,
            router: &mut self.router,
            primary: self.primary,
            sharded: self.locality.is_some(),
            started: self.started,
        };
        actor.on_start(&mut ctx);
        self.actors[id.index()] = Some(actor);
    }

    /// Dispatch exactly one event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.sample_depth();
        let ix = ev.target.index();
        let type_ix = ev.type_ix;
        // Replicated actors execute on every shard but are accounted only
        // on the primary, so summed shard stats equal a serial run. The
        // wall-clock dispatch sample follows the same rule, keeping the
        // merged timing count equal to the merged event count.
        let count_it = self.primary || !self.meta.get(ix).is_some_and(|m| m.replicated);
        let taken = self.actors.get_mut(ix).and_then(|s| s.take());
        match taken {
            Some(mut actor) => {
                let t0 = if count_it {
                    self.dispatch_wall.as_ref().map(|_| Instant::now())
                } else {
                    None
                };
                let mut ctx = Context {
                    now: self.now,
                    self_id: ev.target,
                    queue: &mut self.queue,
                    services: &mut self.services,
                    rngs: &mut self.actor_rngs,
                    actors: &mut self.actors,
                    meta: &mut self.meta,
                    router: &mut self.router,
                    primary: self.primary,
                    sharded: self.locality.is_some(),
                    started: self.started,
                };
                actor.handle(ev.payload, &mut ctx);
                if let (Some(t0), Some(w)) = (t0, self.dispatch_wall.as_mut()) {
                    w.add(t0.elapsed().as_nanos() as u64);
                }
                // The slot is still None (actors are only ever inserted at
                // fresh indices while running), so this cannot clobber.
                self.actors[ix] = Some(actor);
                if count_it {
                    self.events_processed += 1;
                    self.queue.note_executed(type_ix);
                }
                if self.dispatch_counts.len() <= ix {
                    self.dispatch_counts.resize(ix + 1, 0);
                }
                self.dispatch_counts[ix] += 1;
            }
            None => {
                if count_it {
                    self.events_dropped += 1;
                    self.queue.note_dropped(type_ix);
                }
            }
        }
        true
    }

    /// Record one queue-depth sample if the sampling cadence is due.
    /// Bounded: hitting [`DEPTH_SAMPLE_CAP`] drops every other sample and
    /// doubles the interval.
    fn sample_depth(&mut self) {
        if self.now < self.next_depth_sample {
            return;
        }
        self.depth_samples.push((self.now, self.queue.len() as u64));
        self.next_depth_sample = self.now + self.depth_interval;
        if self.depth_samples.len() >= DEPTH_SAMPLE_CAP {
            let mut keep = false;
            self.depth_samples.retain(|_| {
                keep = !keep;
                keep
            });
            self.depth_interval = self.depth_interval.saturating_mul(2);
        }
    }

    /// Run until the queue is empty or `horizon` is reached. Events at
    /// exactly `horizon` still fire; the clock ends at
    /// `min(horizon, last event time)`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.ensure_started();
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::QueueEmpty,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Execute every pending event with `at < end` (and `at <= horizon`),
    /// then stop — the conservative-lockstep inner loop. Unlike
    /// [`run_until`](Self::run_until) this neither advances the clock to
    /// `end` nor drains events *at* `end`; the shard executor owns the
    /// window bookkeeping.
    pub fn run_window(&mut self, end: SimTime, horizon: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t >= end || t > horizon {
                break;
            }
            self.step();
        }
    }

    /// Advance the clock to `t` without executing anything (end-of-run
    /// normalisation by the shard executor).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "cannot move the clock backwards");
        self.now = t;
    }

    /// Run for a relative span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let horizon = self.now + d;
        self.run_until(horizon)
    }

    /// Run until the queue drains, with a hard event-count limit as runaway
    /// protection.
    pub fn run_to_completion(&mut self, max_events: u64) -> RunOutcome {
        self.ensure_started();
        let start = self.events_processed + self.events_dropped;
        while !self.queue.is_empty() {
            if self.events_processed + self.events_dropped - start >= max_events {
                return RunOutcome::EventLimit;
            }
            self.step();
        }
        RunOutcome::QueueEmpty
    }
}

/// The world as seen from inside an actor callback.
pub struct Context<'a> {
    now: SimTime,
    self_id: ActorId,
    queue: &'a mut EventQueue,
    services: &'a mut ServiceMap,
    rngs: &'a mut ActorRngs,
    actors: &'a mut Vec<ActorSlot>,
    meta: &'a mut Vec<ActorMeta>,
    router: &'a mut Option<Box<dyn RemoteRouter>>,
    primary: bool,
    sharded: bool,
    started: bool,
}

impl Context<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// This actor's deterministic RNG stream. Derived from
    /// `(seed, actor index)`, so the draw sequence is independent of event
    /// interleaving with other actors (and therefore of sharding).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rngs.get(self.self_id.index())
    }

    /// True if `id` is hosted by another shard (always false serially).
    pub fn is_remote(&self, id: ActorId) -> bool {
        self.meta.get(id.index()).is_some_and(|m| m.ghost)
    }

    /// True on the accounting-primary shard (and in serial runs). Lets
    /// replicated actors count a side effect exactly once across shards.
    pub fn accounting_primary(&self) -> bool {
        self.primary
    }

    /// Send a message to `target` after `delay`. The value is boxed here;
    /// to forward an already-boxed [`Payload`] use [`send_raw_in`] instead
    /// (passing a `Payload` to this method would nest the box).
    ///
    /// [`send_raw_in`]: Context::send_raw_in
    pub fn send_in<T: std::any::Any + Send>(
        &mut self,
        delay: SimDuration,
        target: ActorId,
        value: T,
    ) {
        self.schedule_typed(delay, target, value, false);
    }

    /// Shared typed scheduling path: captures the payload type name (for the
    /// kernel's per-type event accounting) before boxing erases it.
    fn schedule_typed<T: std::any::Any + Send>(
        &mut self,
        delay: SimDuration,
        target: ActorId,
        value: T,
        timer: bool,
    ) {
        self.schedule_keyed(
            self.now + delay,
            target,
            Box::new(value),
            Some(std::any::type_name::<T>()),
            timer,
        );
    }

    /// The one scheduling choke point for actor sends. Assigns the
    /// deterministic `(at, lane, lane_seq)` key from this actor's lane, then
    /// applies the shard policy:
    ///
    /// * local target — enqueue (and account, unless the target is
    ///   replicated and this is not the primary shard);
    /// * ghost target, normal sender — account here (sender side) and hand
    ///   the keyed envelope to the router;
    /// * ghost target, replicated sender — drop silently: the sender's
    ///   replica on the target's own shard performs the local send.
    fn schedule_keyed(
        &mut self,
        at: SimTime,
        target: ActorId,
        payload: Payload,
        name: Option<&'static str>,
        timer: bool,
    ) {
        let lane = self.self_id.index() as u32;
        let lane_seq = self.queue.next_lane_seq(lane);
        let tmeta = self.meta.get(target.index()).copied().unwrap_or_default();
        if tmeta.ghost {
            let self_rep = self
                .meta
                .get(self.self_id.index())
                .is_some_and(|m| m.replicated);
            if self_rep {
                return;
            }
            let type_ix = self.queue.intern_type(payload.as_ref().type_id(), name);
            self.queue.count_scheduled(type_ix, timer);
            let node = tmeta.node.expect("ghost actor has no node");
            self.router
                .as_mut()
                .expect("message to a ghost actor but no router installed")
                .route(
                    RemoteEnvelope {
                        at,
                        lane,
                        lane_seq,
                        target,
                        payload,
                        type_name: name,
                    },
                    node,
                );
            return;
        }
        let type_ix = self.queue.intern_type(payload.as_ref().type_id(), name);
        if self.primary || !tmeta.replicated {
            self.queue.count_scheduled(type_ix, timer);
        }
        self.queue.push_keyed(ScheduledEvent {
            at,
            lane,
            lane_seq,
            target,
            payload,
            type_ix,
        });
    }

    /// Send a message to `target` at the current instant. Among events for
    /// the same instant, ordering follows the scheduling-lane key (sender
    /// lane, then FIFO within the lane).
    pub fn send_now<T: std::any::Any + Send>(&mut self, target: ActorId, value: T) {
        self.send_in(SimDuration::ZERO, target, value);
    }

    /// Forward an already-boxed payload without re-boxing.
    pub fn send_raw_in(&mut self, delay: SimDuration, target: ActorId, payload: Payload) {
        self.schedule_keyed(self.now + delay, target, payload, None, false);
    }

    /// Send a message to self after `delay` (a timer). Counted separately
    /// from ordinary messages in the kernel's event accounting.
    pub fn timer<T: std::any::Any + Send>(&mut self, delay: SimDuration, value: T) {
        let me = self.self_id;
        self.schedule_typed(delay, me, value, true);
    }

    /// Spawn a new actor mid-simulation; `on_start` runs immediately.
    ///
    /// Not supported in sharded runs: mid-run registration would have to be
    /// replayed identically on every shard to keep actor ids aligned, and
    /// no production component needs it.
    pub fn spawn(&mut self, actor: impl Actor + 'static) -> ActorId {
        assert!(
            !self.sharded,
            "Context::spawn is not supported in sharded runs"
        );
        let id = ActorId::from_index(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        self.meta.push(ActorMeta::default());
        if self.started {
            // Run on_start with a nested context for the new actor.
            let mut newcomer = self.actors[id.index()].take().expect("just inserted");
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                queue: self.queue,
                services: self.services,
                rngs: self.rngs,
                actors: self.actors,
                meta: self.meta,
                router: self.router,
                primary: self.primary,
                sharded: self.sharded,
                started: self.started,
            };
            newcomer.on_start(&mut ctx);
            self.actors[id.index()] = Some(newcomer);
        }
        id
    }

    /// Deactivate an actor: subsequent messages to it are counted as
    /// dropped. Deactivating self is allowed (takes effect after the current
    /// callback returns).
    pub fn retire(&mut self, id: ActorId) {
        if id != self.self_id {
            if let Some(slot) = self.actors.get_mut(id.index()) {
                *slot = None;
            }
        } else {
            // Self-retirement: mark via a tombstone the kernel recognises.
            // The kernel re-inserts the running actor unconditionally, so we
            // instead retire self lazily: replace the (currently empty) slot
            // with a tombstone is impossible; callers should retire
            // themselves by having their owner retire them. Document and
            // ignore.
        }
    }

    /// Exclusive access to a shared service while retaining the ability to
    /// schedule events and touch *other* services from inside the closure.
    ///
    /// Panics if the service is not registered or is already taken
    /// (re-entrant access).
    pub fn with_service<S: 'static, R>(
        &mut self,
        f: impl FnOnce(&mut S, &mut Context<'_>) -> R,
    ) -> R {
        let mut svc = self
            .services
            .take::<S>()
            .unwrap_or_else(|| panic_missing::<S>());
        let r = f(
            &mut svc,
            &mut Context {
                now: self.now,
                self_id: self.self_id,
                queue: self.queue,
                services: self.services,
                rngs: self.rngs,
                actors: self.actors,
                meta: self.meta,
                router: self.router,
                primary: self.primary,
                sharded: self.sharded,
                started: self.started,
            },
        );
        self.services.put(svc);
        r
    }

    /// Plain mutable access to a service when no scheduling is needed.
    pub fn service_mut<S: 'static>(&mut self) -> &mut S {
        self.services
            .get_mut::<S>()
            .unwrap_or_else(|| panic_missing::<S>())
    }

    /// Plain shared access to a service.
    pub fn service<S: 'static>(&self) -> &S {
        self.services
            .get::<S>()
            .unwrap_or_else(|| panic_missing::<S>())
    }

    /// Mutable access to a service that may not be registered (e.g. the
    /// optional trace collector). Returns `None` instead of panicking so
    /// instrumentation can no-op when the service is absent.
    #[inline]
    pub fn try_service_mut<S: 'static>(&mut self) -> Option<&mut S> {
        self.services.get_mut::<S>()
    }
}

#[cold]
fn panic_missing<S>() -> ! {
    panic!(
        "service {} not registered (or re-entrantly taken)",
        std::any::type_name::<S>()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::FnActor;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Mutex};

    #[derive(Debug, PartialEq)]
    struct Tick(u32);

    #[test]
    fn delivers_in_time_order_and_advances_clock() {
        let mut sim = Simulation::new(1);
        let log: Arc<Mutex<Vec<(u64, u32)>>> = Default::default();
        let log2 = log.clone();
        let a = sim.add_actor(FnActor(move |msg: Payload, ctx: &mut Context| {
            let t = msg.downcast::<Tick>().unwrap();
            log2.lock().unwrap().push((ctx.now().as_micros(), t.0));
        }));
        sim.schedule(SimDuration::from_millis(5), a, Box::new(Tick(2)));
        sim.schedule(SimDuration::from_millis(1), a, Box::new(Tick(1)));
        sim.schedule(SimDuration::from_millis(9), a, Box::new(Tick(3)));
        assert_eq!(sim.run_to_completion(100), RunOutcome::QueueEmpty);
        assert_eq!(
            *log.lock().unwrap(),
            vec![(1_000, 1), (5_000, 2), (9_000, 3)]
        );
        assert_eq!(sim.now(), SimTime::from_millis(9));
        assert_eq!(sim.stats().events_processed, 3);
    }

    #[test]
    fn timers_chain() {
        struct Ticker {
            remaining: u32,
            fired: Arc<AtomicU32>,
        }
        impl Actor for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_secs(1), Tick(0));
            }
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                self.fired.fetch_add(1, Ordering::Relaxed);
                self.remaining -= 1;
                if self.remaining > 0 {
                    ctx.timer(SimDuration::from_secs(1), Tick(0));
                }
            }
        }
        let fired = Arc::new(AtomicU32::new(0));
        let mut sim = Simulation::new(2);
        sim.add_actor(Ticker {
            remaining: 5,
            fired: fired.clone(),
        });
        sim.run_to_completion(100);
        assert_eq!(fired.load(Ordering::Relaxed), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn horizon_stops_and_freezes_clock() {
        let mut sim = Simulation::new(3);
        let a = sim.add_actor(crate::actor::NullActor);
        sim.schedule(SimDuration::from_secs(10), a, Box::new(()));
        let outcome = sim.run_until(SimTime::from_secs(4));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        assert_eq!(sim.pending_events(), 1);
        // Resume past the event.
        assert_eq!(
            sim.run_until(SimTime::from_secs(20)),
            RunOutcome::QueueEmpty
        );
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn event_at_horizon_still_fires() {
        let mut sim = Simulation::new(4);
        let hits: Arc<AtomicU32> = Default::default();
        let h = hits.clone();
        let a = sim.add_actor(FnActor(move |_m: Payload, _c: &mut Context| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        sim.schedule(SimDuration::from_secs(5), a, Box::new(()));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_window_is_half_open() {
        let mut sim = Simulation::new(44);
        let hits: Arc<AtomicU32> = Default::default();
        let h = hits.clone();
        let a = sim.add_actor(FnActor(move |_m: Payload, _c: &mut Context| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        sim.schedule(SimDuration::from_secs(1), a, Box::new(()));
        sim.schedule(SimDuration::from_secs(2), a, Box::new(()));
        sim.schedule(SimDuration::from_secs(3), a, Box::new(()));
        // Window [_, 2): only the t=1 event fires; t=2 stays pending.
        sim.run_window(SimTime::from_secs(2), SimTime::from_secs(100));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(sim.pending_events(), 2);
        // The clock does not jump to the window end on its own.
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.run_window(SimTime::from_secs(10), SimTime::from_secs(2));
        // Horizon caps execution even inside the window.
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        sim.advance_to(SimTime::from_secs(2));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn messages_to_retired_actor_are_dropped() {
        let mut sim = Simulation::new(5);
        let victim = sim.add_actor(crate::actor::NullActor);
        let killer = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            ctx.retire(victim);
        }));
        sim.schedule(SimDuration::from_secs(1), killer, Box::new(()));
        sim.schedule(SimDuration::from_secs(2), victim, Box::new(()));
        sim.run_to_completion(10);
        assert_eq!(sim.stats().events_processed, 1);
        assert_eq!(sim.stats().events_dropped, 1);
    }

    #[test]
    fn spawn_mid_run_receives_messages() {
        struct Parent;
        impl Actor for Parent {
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                let child = ctx.spawn(FnActor(|msg: Payload, ctx: &mut Context| {
                    let n = msg.downcast::<u32>().unwrap();
                    assert_eq!(*n, 42);
                    // Store proof in a service.
                    *ctx.service_mut::<u32>() += 1;
                }));
                ctx.send_in(SimDuration::from_secs(1), child, 42u32);
            }
        }
        let mut sim = Simulation::new(6);
        sim.add_service(0u32);
        let p = sim.add_actor(Parent);
        sim.schedule(SimDuration::from_secs(1), p, Box::new(()));
        sim.run_to_completion(10);
        assert_eq!(*sim.service::<u32>().unwrap(), 1);
    }

    #[test]
    fn with_service_allows_scheduling_inside() {
        struct Net {
            delivered: u32,
        }
        let mut sim = Simulation::new(7);
        sim.add_service(Net { delivered: 0 });
        let sink = sim.add_actor(FnActor(|_m: Payload, ctx: &mut Context| {
            ctx.with_service::<Net, _>(|net, _| net.delivered += 1);
        }));
        let src = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            ctx.with_service::<Net, _>(|_net, inner| {
                inner.send_in(SimDuration::from_millis(3), sink, ());
            });
        }));
        sim.schedule(SimDuration::ZERO, src, Box::new(()));
        sim.run_to_completion(10);
        assert_eq!(sim.service::<Net>().unwrap().delivered, 1);
    }

    #[test]
    fn run_to_completion_event_limit() {
        struct Forever;
        impl Actor for Forever {
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_secs(1), ());
            }
        }
        let mut sim = Simulation::new(8);
        let a = sim.add_actor(Forever);
        sim.schedule(SimDuration::ZERO, a, Box::new(()));
        assert_eq!(sim.run_to_completion(50), RunOutcome::EventLimit);
    }

    #[test]
    fn dispatch_counters_track_hot_actors() {
        let mut sim = Simulation::new(12);
        let quiet = sim.add_actor(crate::actor::NullActor);
        let busy = sim.add_actor(crate::actor::NullActor);
        sim.schedule(SimDuration::from_secs(1), quiet, Box::new(()));
        for i in 0..5u64 {
            sim.schedule(SimDuration::from_secs(i + 1), busy, Box::new(()));
        }
        sim.run_to_completion(100);
        assert_eq!(sim.dispatch_count(quiet), 1);
        assert_eq!(sim.dispatch_count(busy), 5);
        let top = sim.busiest_actors(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, busy);
        assert_eq!(top[0].2, 5);
        assert_eq!(sim.dispatch_count(ActorId::from_index(99)), 0);
    }

    #[test]
    fn stats_type_counts_sum_to_scheduled_total() {
        #[derive(Debug)]
        struct Ping;
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_secs(1), Tick(0));
            }
            fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
                if msg.downcast_ref::<Tick>().is_some() {
                    let me = ctx.self_id();
                    ctx.send_now(me, Ping);
                }
            }
        }
        let mut sim = Simulation::new(42);
        let e = sim.add_actor(Echo);
        let ghost = ActorId::from_index(77);
        sim.schedule(SimDuration::from_secs(2), ghost, Box::new(()));
        sim.schedule(SimDuration::from_secs(3), e, Box::new(Tick(9)));
        sim.run_to_completion(100);

        let stats = sim.stats();
        let by_type_scheduled: u64 = stats.by_type.iter().map(|t| t.scheduled).sum();
        let by_type_executed: u64 = stats.by_type.iter().map(|t| t.executed).sum();
        let by_type_dropped: u64 = stats.by_type.iter().map(|t| t.dropped).sum();
        assert_eq!(by_type_scheduled, stats.scheduled_total);
        assert_eq!(by_type_executed, stats.events_processed);
        assert_eq!(by_type_dropped, stats.events_dropped);
        assert_eq!(
            stats.timer_scheduled + stats.message_scheduled,
            stats.scheduled_total
        );
        // One timer from on_start; the sim.schedule / send_now paths are
        // messages.
        assert_eq!(stats.timer_scheduled, 1);
        assert_eq!(stats.events_dropped, 1);
        assert!(stats.peak_queue_depth >= 1);
        assert!(!stats.depth_samples.is_empty());
        // Typed sends carry their short type names; raw schedule() is
        // <untyped>.
        assert!(stats.by_type.iter().any(|t| t.name == "Ping"));
        assert!(stats.by_type.iter().any(|t| t.name == "Tick"));
        assert!(stats.by_type.iter().any(|t| t.name == "<untyped>"));
    }

    #[test]
    fn hotpath_timing_is_gated_and_counts_dispatches() {
        let mut sim = Simulation::new(13);
        assert_eq!(sim.hotpath(), None);
        sim.enable_hotpath_timing();
        let a = sim.add_actor(crate::actor::NullActor);
        for i in 0..4u64 {
            sim.schedule(SimDuration::from_secs(i), a, Box::new(()));
        }
        sim.run_to_completion(100);
        let hp = sim.hotpath().unwrap();
        assert_eq!(hp.dispatch.count, 4);
        assert_eq!(hp.queue_push.count, 4);
        assert_eq!(hp.queue_pop.count, 4);
    }

    #[test]
    fn identical_seeds_identical_histories() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Simulation::new(seed);
            let trace: Arc<Mutex<Vec<u64>>> = Default::default();
            let t2 = trace.clone();
            struct Jitter {
                n: u32,
                trace: Arc<Mutex<Vec<u64>>>,
            }
            impl Actor for Jitter {
                fn on_start(&mut self, ctx: &mut Context<'_>) {
                    let d = ctx.rng().duration_between(
                        SimDuration::from_millis(1),
                        SimDuration::from_millis(100),
                    );
                    ctx.timer(d, ());
                }
                fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                    self.trace.lock().unwrap().push(ctx.now().as_micros());
                    if self.n > 0 {
                        self.n -= 1;
                        let d = ctx.rng().exp_duration(SimDuration::from_millis(10));
                        ctx.timer(d, ());
                    }
                }
            }
            sim.add_actor(Jitter { n: 20, trace: t2 });
            sim.run_to_completion(1000);
            let v = trace.lock().unwrap().clone();
            v
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn actor_rng_streams_are_interleaving_invariant() {
        // Two actors drawing alternately see the same per-actor sequences as
        // two actors drawing back-to-back: streams are keyed by actor index,
        // not by global draw order.
        fn draws(seed: u64, schedule: &[(usize, u64)]) -> Vec<(usize, u64)> {
            let mut sim = Simulation::new(seed);
            let out: Arc<Mutex<Vec<(usize, u64)>>> = Default::default();
            let mut ids = Vec::new();
            for ix in 0..2usize {
                let o = out.clone();
                ids.push(
                    sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
                        o.lock().unwrap().push((ix, ctx.rng().next_u64()));
                    })),
                );
            }
            for &(actor, at_ms) in schedule {
                sim.schedule_at(SimTime::from_millis(at_ms), ids[actor], Box::new(()));
            }
            sim.run_to_completion(100);
            let mut v = out.lock().unwrap().clone();
            v.sort();
            v
        }
        let interleaved = draws(7, &[(0, 1), (1, 2), (0, 3), (1, 4)]);
        let grouped = draws(7, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(interleaved, grouped);
    }

    #[test]
    fn ghosts_route_remotely_and_replicas_account_on_primary_only() {
        // A tiny two-"shard" world driven by hand: shard A hosts node 0,
        // shard B hosts node 1. A loopback router records what A tried to
        // send across.
        #[derive(Default)]
        struct Captured(Arc<Mutex<Vec<(u64, u32, u64)>>>);
        impl RemoteRouter for Captured {
            fn route(&mut self, env: RemoteEnvelope, target_node: u16) {
                assert_eq!(target_node, 1);
                self.0
                    .lock()
                    .unwrap()
                    .push((env.at.as_micros(), env.lane, env.lane_seq));
            }
        }
        let captured: Arc<Mutex<Vec<(u64, u32, u64)>>> = Default::default();

        let mut sim = Simulation::new(9);
        sim.set_locality(|node| node == 0);
        sim.set_router(Captured(captured.clone()));
        sim.set_primary(false);
        sim.on_node(0);
        let remote_target = {
            // Build order: local sender is actor 0, ghost is actor 1.
            let g: Arc<Mutex<Vec<(u64, u32, u64)>>> = Default::default();
            let _ = g;
            ActorId::from_index(1)
        };
        let sender = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            assert!(ctx.is_remote(remote_target));
            ctx.send_in(SimDuration::from_millis(5), remote_target, 7u32);
        }));
        sim.on_node(1);
        let ghost = sim.add_actor(crate::actor::NullActor);
        assert_eq!(ghost, remote_target);
        assert!(sim.is_ghost(ghost));
        assert_eq!(sim.actor_node(ghost), Some(1));

        // A replicated ticker: executes here but is not accounted (not
        // primary), and its send to the ghost is dropped, not routed.
        struct Rep {
            ghost: ActorId,
        }
        impl Actor for Rep {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_millis(1), Tick(0));
            }
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                assert!(!ctx.accounting_primary());
                ctx.send_now(self.ghost, Tick(1));
            }
        }
        sim.add_replicated_actor(Rep { ghost });

        // External schedule to the ghost: consumes a lane seq, enqueues
        // nothing (the owning shard will enqueue its own copy).
        sim.schedule(SimDuration::from_millis(2), ghost, Box::new(()));
        // External schedule to the local sender.
        sim.schedule(SimDuration::from_millis(3), sender, Box::new(()));

        sim.run_to_completion(100);
        // Only the normal sender's message crossed the boundary.
        assert_eq!(&*captured.lock().unwrap(), &[(8_000, 0, 0)]);
        let stats = sim.stats();
        // Accounted: the external send to the local sender (the ghost
        // external was skipped) plus the routed cross-shard send (sender
        // side). The replicated timer/tick are primary-only, so invisible.
        assert_eq!(stats.scheduled_total, 2);
        assert_eq!(stats.timer_scheduled, 0);
        assert_eq!(stats.events_processed, 1);
        assert_eq!(stats.events_dropped, 0);
    }

    #[test]
    fn inject_remote_preserves_keys_and_counts_executed_only() {
        let mut sim = Simulation::new(10);
        let log: Arc<Mutex<Vec<u32>>> = Default::default();
        let l = log.clone();
        let a = sim.add_actor(FnActor(move |m: Payload, _c: &mut Context| {
            l.lock().unwrap().push(*m.downcast::<u32>().unwrap());
        }));
        // A local event and a remote envelope at the same instant: the
        // envelope's lane (0) beats the external lane.
        sim.schedule(SimDuration::from_millis(1), a, Box::new(2u32));
        sim.inject_remote(RemoteEnvelope {
            at: SimTime::from_millis(1),
            lane: 0,
            lane_seq: 0,
            target: a,
            payload: Box::new(1u32),
            type_name: Some("u32"),
        });
        sim.run_to_completion(10);
        assert_eq!(&*log.lock().unwrap(), &[1, 2]);
        let stats = sim.stats();
        // The injected event was scheduled on its sender shard: here it
        // only counts as executed.
        assert_eq!(stats.scheduled_total, 1);
        assert_eq!(stats.events_processed, 2);
    }

    #[test]
    fn kernel_stats_merge_and_digest() {
        let mk = |name: &str, sched: u64, exec: u64| EventTypeStat {
            name: name.into(),
            scheduled: sched,
            executed: exec,
            dropped: 0,
            timers: 0,
        };
        let a = KernelStats {
            events_processed: 3,
            events_dropped: 1,
            scheduled_total: 5,
            timer_scheduled: 2,
            message_scheduled: 3,
            peak_queue_depth: 4,
            by_type: vec![mk("Tick", 3, 2), mk("Ping", 2, 1)],
            depth_samples: vec![(SimTime::ZERO, 1)],
        };
        let b = KernelStats {
            events_processed: 2,
            events_dropped: 0,
            scheduled_total: 2,
            timer_scheduled: 1,
            message_scheduled: 1,
            peak_queue_depth: 9,
            by_type: vec![mk("Tick", 2, 2)],
            depth_samples: vec![(SimTime::ZERO, 7)],
        };
        let m = KernelStats::merged(&[a.clone(), b]);
        assert_eq!(m.events_processed, 5);
        assert_eq!(m.scheduled_total, 7);
        assert_eq!(m.peak_queue_depth, 9);
        assert_eq!(m.depth_samples, vec![(SimTime::ZERO, 1)]);
        let tick = m.by_type.iter().find(|t| t.name == "Tick").unwrap();
        assert_eq!(tick.scheduled, 5);
        assert_eq!(tick.executed, 4);
        // Digest ignores the carve-outs: same conserved counters, different
        // peak depth / samples → same digest.
        let mut a2 = a.clone();
        a2.peak_queue_depth = 999;
        a2.depth_samples.clear();
        assert_eq!(a.determinism_digest(), a2.determinism_digest());
        assert_ne!(a.determinism_digest(), m.determinism_digest());
        // merged of a single part is digest-identical to the part.
        assert_eq!(
            KernelStats::merged(std::slice::from_ref(&a)).determinism_digest(),
            a.determinism_digest()
        );
    }
}
