//! Shared simulation services.
//!
//! Some state is naturally global to a simulated world rather than owned by
//! one actor — the network fabric, per-node OS resource accounting, the
//! metrics collector. Such state registers itself as a *service*: a
//! type-keyed singleton that actors access through their context.
//!
//! To keep borrows sound while still letting a service callback schedule
//! events, services are temporarily *taken out* of the map for the duration
//! of the access (see [`crate::Context::with_service`]) and put back after.
//! Nested access to two different services works; re-entrant access to the
//! same service panics with a clear message instead of aliasing.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Type-keyed map of singleton services.
#[derive(Default)]
pub struct ServiceMap {
    slots: HashMap<TypeId, Box<dyn Any>>,
}

impl ServiceMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a service, replacing any previous instance of the same type.
    pub fn insert<S: Any>(&mut self, svc: S) {
        self.slots.insert(TypeId::of::<S>(), Box::new(svc));
    }

    /// True if a service of type `S` is registered (and not currently taken).
    pub fn contains<S: Any>(&self) -> bool {
        self.slots.contains_key(&TypeId::of::<S>())
    }

    /// Remove the service of type `S` for exclusive use. Pair with [`put`].
    ///
    /// [`put`]: ServiceMap::put
    pub fn take<S: Any>(&mut self) -> Option<Box<S>> {
        self.slots
            .remove(&TypeId::of::<S>())
            .map(|b| b.downcast::<S>().expect("service slot type mismatch"))
    }

    /// Return a service previously removed with [`take`].
    ///
    /// [`take`]: ServiceMap::take
    pub fn put<S: Any>(&mut self, svc: Box<S>) {
        self.slots.insert(TypeId::of::<S>(), svc);
    }

    /// Borrow a service immutably.
    pub fn get<S: Any>(&self) -> Option<&S> {
        self.slots
            .get(&TypeId::of::<S>())
            .map(|b| b.downcast_ref::<S>().expect("service slot type mismatch"))
    }

    /// Borrow a service mutably.
    pub fn get_mut<S: Any>(&mut self) -> Option<&mut S> {
        self.slots
            .get_mut(&TypeId::of::<S>())
            .map(|b| b.downcast_mut::<S>().expect("service slot type mismatch"))
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no services are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u32);
    struct Name(String);

    #[test]
    fn insert_get_mutate() {
        let mut m = ServiceMap::new();
        m.insert(Counter(1));
        m.insert(Name("hydra".into()));
        assert!(m.contains::<Counter>());
        assert_eq!(m.get::<Counter>().unwrap().0, 1);
        m.get_mut::<Counter>().unwrap().0 += 1;
        assert_eq!(m.get::<Counter>().unwrap().0, 2);
        assert_eq!(m.get::<Name>().unwrap().0, "hydra");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn take_and_put_roundtrip() {
        let mut m = ServiceMap::new();
        m.insert(Counter(7));
        let c = m.take::<Counter>().unwrap();
        assert!(!m.contains::<Counter>());
        assert_eq!(c.0, 7);
        m.put(c);
        assert_eq!(m.get::<Counter>().unwrap().0, 7);
    }

    #[test]
    fn missing_service_is_none() {
        let mut m = ServiceMap::new();
        assert!(m.get::<Counter>().is_none());
        assert!(m.take::<Counter>().is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn insert_replaces() {
        let mut m = ServiceMap::new();
        m.insert(Counter(1));
        m.insert(Counter(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get::<Counter>().unwrap().0, 2);
    }
}
