//! Virtual time for the discrete-event kernel.
//!
//! Simulated time is a monotonically non-decreasing count of microseconds
//! since the start of the simulation. Microsecond resolution comfortably
//! covers the paper's measurement range (sub-millisecond network hops up to
//! 35-second R-GMA delays) without overflow: `u64` microseconds last ~584k
//! years.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest microsecond,
    /// saturating at zero for negative input).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Construct from fractional milliseconds (rounds; clamps negatives to 0).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (rounds; clamps negatives to 0).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(((self.0 as f64) * k.max(0.0)).round() as u64)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_micros(1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_micros(), 250_000);
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_micros(), 1_500);
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(-0.1), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(3).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
        assert_eq!(
            (SimDuration::from_secs(1) + SimDuration::from_secs(2)).as_micros(),
            3_000_000
        );
        assert_eq!((SimDuration::from_secs(4) / 2).as_micros(), 2_000_000);
        assert_eq!((SimDuration::from_secs(2) * 3).as_micros(), 6_000_000);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(1)));
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering_and_extrema() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(1).max(SimTime::from_secs(2)),
            SimTime::from_secs(2)
        );
        assert_eq!(
            SimDuration::from_secs(1).min(SimDuration::from_secs(2)),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
