#![warn(missing_docs)]
//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the gridmon reproduction. Provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//! * [`EventQueue`] — a time-ordered queue with FIFO tie-breaking, so a
//!   given seed always replays the identical event history.
//! * [`Actor`] / [`Simulation`] / [`Context`] — the actor model every
//!   middleware component is written against.
//! * [`ServiceMap`] — type-keyed shared state (network fabric, OS resource
//!   accounting, metrics collectors).
//! * [`SimRng`] — a frozen xoshiro256++ implementation for reproducible
//!   randomness.
//!
//! Design notes: the kernel dispatches strictly one event at a time; actors
//! communicate only via messages, so there is no shared mutable state
//! between actors except through explicit services. Everything is
//! single-threaded *within* one simulation — parallelism in this project
//! happens *across* simulations (parameter sweeps), which is where the real
//! win is for a measurement-study reproduction.

pub mod actor;
pub mod event;
pub mod kernel;
pub mod rng;
pub mod service;
pub mod time;

pub use actor::{Actor, ActorId, FnActor, NullActor};
pub use event::{EventQueue, EventTypeStat, Payload, ScheduledEvent, WallAccum, EXTERNAL_LANE};
pub use kernel::{
    Context, KernelHotpath, KernelStats, RemoteEnvelope, RemoteRouter, RunOutcome, Simulation,
};
pub use rng::SimRng;
pub use service::ServiceMap;
pub use time::{SimDuration, SimTime};
