//! The pending-event set: a time-ordered priority queue with deterministic
//! tie-breaking.
//!
//! Two events scheduled for the same instant fire in *scheduling-lane*
//! order: each scheduling source (an actor, or the external/build path) owns
//! a lane, and the key `(at, lane, lane_seq)` orders ties first by lane,
//! then FIFO within the lane. The key is a pure function of *who* scheduled
//! the event and *how many* events that lane had scheduled before — never of
//! the global interleaving — so a simulation partitioned across shards
//! produces byte-identical event orderings to a serial run (see
//! `crates/simshard`). Within one lane the order is still FIFO, which keeps
//! single-source schedules (and the classic external-schedule tests) stable.
//!
//! The queue also keeps always-on, allocation-free accounting: per-payload-
//! type scheduled/executed/dropped counts, the timer vs. message mix, and
//! the queue-depth high-watermark. Counting happens on the schedule/pop
//! path with one `HashMap<TypeId, u16>` probe per schedule (amortised O(1),
//! no allocation after the first event of each type) and plain integer
//! increments elsewhere, so it is cheap enough to leave on for every run.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::any::{Any, TypeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::time::Instant;

/// Opaque payload delivered to an actor. Actors downcast to their own
/// message enum. `Send` so cross-shard deliveries can travel through the
/// shard mailboxes.
pub type Payload = Box<dyn Any + Send>;

/// Lane used by events scheduled from outside any actor (build-time
/// `Simulation::schedule`). Sorts *after* every actor lane at equal time.
pub const EXTERNAL_LANE: u32 = u32::MAX;

/// A scheduled delivery.
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling lane: the index of the actor that scheduled this event,
    /// or [`EXTERNAL_LANE`] for build-time schedules. Breaks same-instant
    /// ties deterministically and shard-invariantly.
    pub lane: u32,
    /// FIFO sequence within the lane.
    pub lane_seq: u64,
    /// Receiving actor.
    pub target: ActorId,
    /// Message payload.
    pub payload: Payload,
    /// Index into the queue's per-type accounting table.
    pub(crate) type_ix: u16,
}

impl ScheduledEvent {
    /// The deterministic ordering key `(at, lane, lane_seq)`.
    pub fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.lane, self.lane_seq)
    }
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the lowest key pops first.
        other.key().cmp(&self.key())
    }
}

/// Lifetime counters for one payload type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTypeStat {
    /// Short payload type name (e.g. `Delivery`), or `<untyped>` for events
    /// scheduled through the raw (already-boxed) paths.
    pub name: String,
    /// Events of this type ever scheduled.
    pub scheduled: u64,
    /// Events of this type dispatched to a live actor.
    pub executed: u64,
    /// Events of this type dropped (target retired or never registered).
    pub dropped: u64,
    /// Of `scheduled`, how many were timer self-sends.
    pub timers: u64,
}

#[derive(Default)]
struct TypeAccount {
    name: Option<&'static str>,
    scheduled: u64,
    executed: u64,
    dropped: u64,
    timers: u64,
}

/// Wall-clock accumulator for one instrumented hot-path site: total
/// monotonic nanoseconds and the number of timed operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallAccum {
    /// Total wall-clock nanoseconds spent in the site.
    pub nanos: u64,
    /// Number of timed operations.
    pub count: u64,
}

impl WallAccum {
    /// Fold one timed operation into the accumulator.
    #[inline]
    pub fn add(&mut self, nanos: u64) {
        self.nanos += nanos;
        self.count += 1;
    }

    /// Fold another accumulator into this one (shard merge).
    #[inline]
    pub fn merge(&mut self, other: WallAccum) {
        self.nanos += other.nanos;
        self.count += other.count;
    }
}

#[derive(Default)]
struct QueueWall {
    push: WallAccum,
    pop: WallAccum,
}

/// Time-ordered queue of scheduled events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    lane_seqs: Vec<u64>,
    external_seq: u64,
    scheduled_total: u64,
    timer_scheduled: u64,
    peak_depth: usize,
    type_ix: HashMap<TypeId, u16>,
    types: Vec<TypeAccount>,
    /// Wall-clock push/pop timing; `None` (the default) keeps both probes
    /// off the hot path entirely.
    wall: Option<Box<QueueWall>>,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push an event from the external lane; assigns the deterministic
    /// per-lane sequence number.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        self.schedule_tagged(at, target, payload, None, false);
    }

    /// Push an external-lane event carrying accounting tags: the payload's
    /// type name (if statically known at the call site) and whether it is a
    /// timer self-send. [`schedule`](Self::schedule) delegates here with no
    /// tags.
    pub fn schedule_tagged(
        &mut self,
        at: SimTime,
        target: ActorId,
        payload: Payload,
        name: Option<&'static str>,
        timer: bool,
    ) {
        self.schedule_on_lane(at, EXTERNAL_LANE, target, payload, name, timer);
    }

    /// Push an event on a specific scheduling lane, with full accounting.
    pub fn schedule_on_lane(
        &mut self,
        at: SimTime,
        lane: u32,
        target: ActorId,
        payload: Payload,
        name: Option<&'static str>,
        timer: bool,
    ) {
        let type_ix = self.intern_type(payload.as_ref().type_id(), name);
        self.count_scheduled(type_ix, timer);
        let lane_seq = self.next_lane_seq(lane);
        self.push_keyed(ScheduledEvent {
            at,
            lane,
            lane_seq,
            target,
            payload,
            type_ix,
        });
    }

    /// Draw the next FIFO sequence number for `lane`, advancing the lane
    /// counter. Lanes are created on first use. Counters advance even for
    /// events that are ultimately dropped or routed to another shard — the
    /// key stream of a lane must not depend on where its targets live.
    pub fn next_lane_seq(&mut self, lane: u32) -> u64 {
        if lane == EXTERNAL_LANE {
            let s = self.external_seq;
            self.external_seq += 1;
            s
        } else {
            let ix = lane as usize;
            if ix >= self.lane_seqs.len() {
                self.lane_seqs.resize(ix + 1, 0);
            }
            let s = self.lane_seqs[ix];
            self.lane_seqs[ix] += 1;
            s
        }
    }

    /// Intern a payload type into the accounting table without counting
    /// anything. Returns the table index used by [`ScheduledEvent`].
    pub fn intern_type(&mut self, tid: TypeId, name: Option<&'static str>) -> u16 {
        let ix = match self.type_ix.get(&tid) {
            Some(&ix) => ix as usize,
            None => {
                let ix = self.types.len();
                // u16 bounds the taxonomy at 65k distinct payload types; the
                // whole stack defines a few dozen.
                let packed = u16::try_from(ix).expect("too many distinct payload types");
                self.type_ix.insert(tid, packed);
                self.types.push(TypeAccount::default());
                ix
            }
        };
        let acct = &mut self.types[ix];
        if acct.name.is_none() {
            acct.name = name;
        }
        ix as u16
    }

    /// Count one scheduled event of type `type_ix`. Split from
    /// [`push_keyed`](Self::push_keyed) so the kernel can decide *where*
    /// an event is accounted (sender shard vs. receiver shard, primary-only
    /// for replicated actors) independently of where it is enqueued.
    pub fn count_scheduled(&mut self, type_ix: u16, timer: bool) {
        self.scheduled_total += 1;
        let acct = &mut self.types[type_ix as usize];
        acct.scheduled += 1;
        if timer {
            acct.timers += 1;
            self.timer_scheduled += 1;
        }
    }

    /// Push a fully-keyed event (key already assigned — e.g. one that
    /// crossed a shard boundary carrying its sender-side key).
    pub fn push_keyed(&mut self, ev: ScheduledEvent) {
        let t0 = self.wall.as_ref().map(|_| Instant::now());
        self.heap.push(ev);
        if self.heap.len() > self.peak_depth {
            self.peak_depth = self.heap.len();
        }
        if let (Some(t0), Some(w)) = (t0, self.wall.as_mut()) {
            w.push.add(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let t0 = self.wall.as_ref().map(|_| Instant::now());
        let ev = self.heap.pop();
        if let (Some(t0), Some(w)) = (t0, self.wall.as_mut()) {
            w.pop.add(t0.elapsed().as_nanos() as u64);
        }
        ev
    }

    /// Record that a popped event was dispatched to a live actor.
    pub(crate) fn note_executed(&mut self, type_ix: u16) {
        self.types[type_ix as usize].executed += 1;
    }

    /// Record that a popped event was dropped (target retired or missing).
    pub(crate) fn note_dropped(&mut self, type_ix: u16) {
        self.types[type_ix as usize].dropped += 1;
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotonic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Of all scheduled events, how many were timer self-sends.
    pub fn timer_scheduled(&self) -> u64 {
        self.timer_scheduled
    }

    /// High-watermark of pending events.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Per-payload-type accounting snapshot, sorted by scheduled count
    /// descending then name (deterministic regardless of `TypeId` hashing).
    pub fn type_stats(&self) -> Vec<EventTypeStat> {
        let mut rows: Vec<EventTypeStat> = self
            .types
            .iter()
            .map(|t| EventTypeStat {
                name: t
                    .name
                    .map_or_else(|| "<untyped>".to_owned(), short_type_name),
                scheduled: t.scheduled,
                executed: t.executed,
                dropped: t.dropped,
                timers: t.timers,
            })
            .collect();
        rows.sort_by(|a, b| b.scheduled.cmp(&a.scheduled).then(a.name.cmp(&b.name)));
        rows
    }

    /// Turn on wall-clock timing of heap push/pop. Off by default; when off
    /// the only hot-path cost is one `Option` discriminant check.
    pub fn enable_wall_timing(&mut self) {
        if self.wall.is_none() {
            self.wall = Some(Box::default());
        }
    }

    /// Wall-clock totals for (push, pop), if timing was enabled.
    pub fn wall_timing(&self) -> Option<(WallAccum, WallAccum)> {
        self.wall.as_ref().map(|w| (w.push, w.pop))
    }
}

/// Strip module paths from a `std::any::type_name` string:
/// `narada::protocol::BrokerMsg` becomes `BrokerMsg`, including inside
/// generic arguments.
pub(crate) fn short_type_name(full: &'static str) -> String {
    let mut out = String::new();
    let mut ident = String::new();
    for c in full.chars() {
        if c.is_alphanumeric() || c == '_' || c == ':' {
            ident.push(c);
        } else {
            out.push_str(ident.rsplit("::").next().unwrap_or(&ident));
            ident.clear();
            out.push(c);
        }
    }
    out.push_str(ident.rsplit("::").next().unwrap_or(&ident));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: usize) -> ActorId {
        ActorId::from_index(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), aid(0), Box::new(3u32));
        q.schedule(SimTime::from_secs(1), aid(0), Box::new(1u32));
        q.schedule(SimTime::from_secs(2), aid(0), Box::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, aid(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_by_lane_then_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        // Interleave schedules across lanes 1, 0 and the external lane; the
        // pop order must be lane 0's events FIFO, then lane 1's, then the
        // external lane's — independent of scheduling interleaving.
        q.schedule_on_lane(t, 1, aid(0), Box::new(10u32), None, false);
        q.schedule_tagged(t, aid(0), Box::new(90u32), None, false);
        q.schedule_on_lane(t, 0, aid(0), Box::new(0u32), None, false);
        q.schedule_on_lane(t, 1, aid(0), Box::new(11u32), None, false);
        q.schedule_on_lane(t, 0, aid(0), Box::new(1u32), None, false);
        q.schedule_tagged(t, aid(0), Box::new(91u32), None, false);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 10, 11, 90, 91]);
    }

    #[test]
    fn keyed_push_preserves_foreign_keys() {
        // A cross-shard event arrives carrying its sender-side key and must
        // order exactly as if it had been scheduled locally.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule_on_lane(t, 2, aid(0), Box::new(2u32), None, false);
        let ix = q.intern_type(TypeId::of::<u32>(), Some("u32"));
        q.push_keyed(ScheduledEvent {
            at: t,
            lane: 1,
            lane_seq: 0,
            target: aid(0),
            payload: Box::new(1u32),
            type_ix: ix,
        });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5), aid(1), Box::new(()));
        q.schedule(SimTime::from_secs(2), aid(1), Box::new(()));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn type_accounting_sums_to_scheduled_total() {
        let mut q = EventQueue::new();
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(1u32), Some("u32"), false);
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(2u32), Some("u32"), true);
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new("s"), Some("&str"), false);
        q.schedule(SimTime::ZERO, aid(0), Box::new(3.0f64));
        let stats = q.type_stats();
        let scheduled: u64 = stats.iter().map(|s| s.scheduled).sum();
        assert_eq!(scheduled, q.scheduled_total());
        assert_eq!(q.timer_scheduled(), 1);
        assert_eq!(q.peak_depth(), 4);
        let u32_row = stats.iter().find(|s| s.name == "u32").unwrap();
        assert_eq!(u32_row.scheduled, 2);
        assert_eq!(u32_row.timers, 1);
        // The raw path gets the fallback display name.
        assert!(stats.iter().any(|s| s.name == "<untyped>"));
    }

    #[test]
    fn executed_and_dropped_tallies() {
        let mut q = EventQueue::new();
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(1u32), Some("u32"), false);
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(2u32), Some("u32"), false);
        let a = q.pop().unwrap();
        q.note_executed(a.type_ix);
        let b = q.pop().unwrap();
        q.note_dropped(b.type_ix);
        let stats = q.type_stats();
        assert_eq!(stats[0].executed, 1);
        assert_eq!(stats[0].dropped, 1);
    }

    #[test]
    fn wall_timing_counts_operations() {
        let mut q = EventQueue::new();
        assert_eq!(q.wall_timing(), None);
        q.enable_wall_timing();
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.pop();
        let (push, pop) = q.wall_timing().unwrap();
        assert_eq!(push.count, 2);
        assert_eq!(pop.count, 1);
    }

    #[test]
    fn short_type_name_strips_paths() {
        assert_eq!(short_type_name("narada::protocol::BrokerMsg"), "BrokerMsg");
        assert_eq!(
            short_type_name("alloc::vec::Vec<core::option::Option<u32>>"),
            "Vec<Option<u32>>"
        );
        assert_eq!(short_type_name("()"), "()");
        assert_eq!(short_type_name("u32"), "u32");
    }
}
