//! The pending-event set: a time-ordered priority queue with deterministic
//! tie-breaking.
//!
//! Two events scheduled for the same instant fire in the order they were
//! scheduled (FIFO by sequence number). This makes simulations bit-exactly
//! reproducible: the heap order never depends on allocation addresses or
//! hash iteration order.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque payload delivered to an actor. Actors downcast to their own
/// message enum.
pub type Payload = Box<dyn Any>;

/// A scheduled delivery.
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: SimTime,
    /// Global schedule order, used to break ties deterministically.
    pub seq: u64,
    /// Receiving actor.
    pub target: ActorId,
    /// Message payload.
    pub payload: Payload,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered queue of scheduled events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push an event; assigns the deterministic sequence number.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent {
            at,
            seq,
            target,
            payload,
        });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotonic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: usize) -> ActorId {
        ActorId::from_index(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), aid(0), Box::new(3u32));
        q.schedule(SimTime::from_secs(1), aid(0), Box::new(1u32));
        q.schedule(SimTime::from_secs(2), aid(0), Box::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, aid(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5), aid(1), Box::new(()));
        q.schedule(SimTime::from_secs(2), aid(1), Box::new(()));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
