//! The pending-event set: a time-ordered priority queue with deterministic
//! tie-breaking.
//!
//! Two events scheduled for the same instant fire in the order they were
//! scheduled (FIFO by sequence number). This makes simulations bit-exactly
//! reproducible: the heap order never depends on allocation addresses or
//! hash iteration order.
//!
//! The queue also keeps always-on, allocation-free accounting: per-payload-
//! type scheduled/executed/dropped counts, the timer vs. message mix, and
//! the queue-depth high-watermark. Counting happens on the schedule/pop
//! path with one `HashMap<TypeId, u16>` probe per schedule (amortised O(1),
//! no allocation after the first event of each type) and plain integer
//! increments elsewhere, so it is cheap enough to leave on for every run.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::any::{Any, TypeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::time::Instant;

/// Opaque payload delivered to an actor. Actors downcast to their own
/// message enum.
pub type Payload = Box<dyn Any>;

/// A scheduled delivery.
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: SimTime,
    /// Global schedule order, used to break ties deterministically.
    pub seq: u64,
    /// Receiving actor.
    pub target: ActorId,
    /// Message payload.
    pub payload: Payload,
    /// Index into the queue's per-type accounting table.
    pub(crate) type_ix: u16,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Lifetime counters for one payload type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTypeStat {
    /// Short payload type name (e.g. `Delivery`), or `<untyped>` for events
    /// scheduled through the raw (already-boxed) paths.
    pub name: String,
    /// Events of this type ever scheduled.
    pub scheduled: u64,
    /// Events of this type dispatched to a live actor.
    pub executed: u64,
    /// Events of this type dropped (target retired or never registered).
    pub dropped: u64,
    /// Of `scheduled`, how many were timer self-sends.
    pub timers: u64,
}

#[derive(Default)]
struct TypeAccount {
    name: Option<&'static str>,
    scheduled: u64,
    executed: u64,
    dropped: u64,
    timers: u64,
}

/// Wall-clock accumulator for one instrumented hot-path site: total
/// monotonic nanoseconds and the number of timed operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallAccum {
    /// Total wall-clock nanoseconds spent in the site.
    pub nanos: u64,
    /// Number of timed operations.
    pub count: u64,
}

impl WallAccum {
    /// Fold one timed operation into the accumulator.
    #[inline]
    pub fn add(&mut self, nanos: u64) {
        self.nanos += nanos;
        self.count += 1;
    }
}

#[derive(Default)]
struct QueueWall {
    push: WallAccum,
    pop: WallAccum,
}

/// Time-ordered queue of scheduled events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    scheduled_total: u64,
    timer_scheduled: u64,
    peak_depth: usize,
    type_ix: HashMap<TypeId, u16>,
    types: Vec<TypeAccount>,
    /// Wall-clock push/pop timing; `None` (the default) keeps both probes
    /// off the hot path entirely.
    wall: Option<Box<QueueWall>>,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push an event; assigns the deterministic sequence number.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        self.schedule_tagged(at, target, payload, None, false);
    }

    /// Push an event carrying accounting tags: the payload's type name (if
    /// statically known at the call site) and whether it is a timer
    /// self-send. [`schedule`](Self::schedule) delegates here with no tags.
    pub fn schedule_tagged(
        &mut self,
        at: SimTime,
        target: ActorId,
        payload: Payload,
        name: Option<&'static str>,
        timer: bool,
    ) {
        let t0 = self.wall.as_ref().map(|_| Instant::now());
        let type_ix = self.account_scheduled(payload.as_ref().type_id(), name, timer);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent {
            at,
            seq,
            target,
            payload,
            type_ix,
        });
        if self.heap.len() > self.peak_depth {
            self.peak_depth = self.heap.len();
        }
        if let (Some(t0), Some(w)) = (t0, self.wall.as_mut()) {
            w.push.add(t0.elapsed().as_nanos() as u64);
        }
    }

    fn account_scheduled(&mut self, tid: TypeId, name: Option<&'static str>, timer: bool) -> u16 {
        let ix = match self.type_ix.get(&tid) {
            Some(&ix) => ix as usize,
            None => {
                let ix = self.types.len();
                // u16 bounds the taxonomy at 65k distinct payload types; the
                // whole stack defines a few dozen.
                let packed = u16::try_from(ix).expect("too many distinct payload types");
                self.type_ix.insert(tid, packed);
                self.types.push(TypeAccount::default());
                ix
            }
        };
        let acct = &mut self.types[ix];
        if acct.name.is_none() {
            acct.name = name;
        }
        acct.scheduled += 1;
        if timer {
            acct.timers += 1;
            self.timer_scheduled += 1;
        }
        ix as u16
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let t0 = self.wall.as_ref().map(|_| Instant::now());
        let ev = self.heap.pop();
        if let (Some(t0), Some(w)) = (t0, self.wall.as_mut()) {
            w.pop.add(t0.elapsed().as_nanos() as u64);
        }
        ev
    }

    /// Record that a popped event was dispatched to a live actor.
    pub(crate) fn note_executed(&mut self, type_ix: u16) {
        self.types[type_ix as usize].executed += 1;
    }

    /// Record that a popped event was dropped (target retired or missing).
    pub(crate) fn note_dropped(&mut self, type_ix: u16) {
        self.types[type_ix as usize].dropped += 1;
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotonic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Of all scheduled events, how many were timer self-sends.
    pub fn timer_scheduled(&self) -> u64 {
        self.timer_scheduled
    }

    /// High-watermark of pending events.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Per-payload-type accounting snapshot, sorted by scheduled count
    /// descending then name (deterministic regardless of `TypeId` hashing).
    pub fn type_stats(&self) -> Vec<EventTypeStat> {
        let mut rows: Vec<EventTypeStat> = self
            .types
            .iter()
            .map(|t| EventTypeStat {
                name: t
                    .name
                    .map_or_else(|| "<untyped>".to_owned(), short_type_name),
                scheduled: t.scheduled,
                executed: t.executed,
                dropped: t.dropped,
                timers: t.timers,
            })
            .collect();
        rows.sort_by(|a, b| b.scheduled.cmp(&a.scheduled).then(a.name.cmp(&b.name)));
        rows
    }

    /// Turn on wall-clock timing of heap push/pop. Off by default; when off
    /// the only hot-path cost is one `Option` discriminant check.
    pub fn enable_wall_timing(&mut self) {
        if self.wall.is_none() {
            self.wall = Some(Box::default());
        }
    }

    /// Wall-clock totals for (push, pop), if timing was enabled.
    pub fn wall_timing(&self) -> Option<(WallAccum, WallAccum)> {
        self.wall.as_ref().map(|w| (w.push, w.pop))
    }
}

/// Strip module paths from a `std::any::type_name` string:
/// `narada::protocol::BrokerMsg` becomes `BrokerMsg`, including inside
/// generic arguments.
fn short_type_name(full: &'static str) -> String {
    let mut out = String::new();
    let mut ident = String::new();
    for c in full.chars() {
        if c.is_alphanumeric() || c == '_' || c == ':' {
            ident.push(c);
        } else {
            out.push_str(ident.rsplit("::").next().unwrap_or(&ident));
            ident.clear();
            out.push(c);
        }
    }
    out.push_str(ident.rsplit("::").next().unwrap_or(&ident));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: usize) -> ActorId {
        ActorId::from_index(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), aid(0), Box::new(3u32));
        q.schedule(SimTime::from_secs(1), aid(0), Box::new(1u32));
        q.schedule(SimTime::from_secs(2), aid(0), Box::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, aid(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5), aid(1), Box::new(()));
        q.schedule(SimTime::from_secs(2), aid(1), Box::new(()));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn type_accounting_sums_to_scheduled_total() {
        let mut q = EventQueue::new();
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(1u32), Some("u32"), false);
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(2u32), Some("u32"), true);
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new("s"), Some("&str"), false);
        q.schedule(SimTime::ZERO, aid(0), Box::new(3.0f64));
        let stats = q.type_stats();
        let scheduled: u64 = stats.iter().map(|s| s.scheduled).sum();
        assert_eq!(scheduled, q.scheduled_total());
        assert_eq!(q.timer_scheduled(), 1);
        assert_eq!(q.peak_depth(), 4);
        let u32_row = stats.iter().find(|s| s.name == "u32").unwrap();
        assert_eq!(u32_row.scheduled, 2);
        assert_eq!(u32_row.timers, 1);
        // The raw path gets the fallback display name.
        assert!(stats.iter().any(|s| s.name == "<untyped>"));
    }

    #[test]
    fn executed_and_dropped_tallies() {
        let mut q = EventQueue::new();
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(1u32), Some("u32"), false);
        q.schedule_tagged(SimTime::ZERO, aid(0), Box::new(2u32), Some("u32"), false);
        let a = q.pop().unwrap();
        q.note_executed(a.type_ix);
        let b = q.pop().unwrap();
        q.note_dropped(b.type_ix);
        let stats = q.type_stats();
        assert_eq!(stats[0].executed, 1);
        assert_eq!(stats[0].dropped, 1);
    }

    #[test]
    fn wall_timing_counts_operations() {
        let mut q = EventQueue::new();
        assert_eq!(q.wall_timing(), None);
        q.enable_wall_timing();
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.schedule(SimTime::ZERO, aid(0), Box::new(()));
        q.pop();
        let (push, pop) = q.wall_timing().unwrap();
        assert_eq!(push.count, 2);
        assert_eq!(pop.count, 1);
    }

    #[test]
    fn short_type_name_strips_paths() {
        assert_eq!(short_type_name("narada::protocol::BrokerMsg"), "BrokerMsg");
        assert_eq!(
            short_type_name("alloc::vec::Vec<core::option::Option<u32>>"),
            "Vec<Option<u32>>"
        );
        assert_eq!(short_type_name("()"), "()");
        assert_eq!(short_type_name("u32"), "u32");
    }
}
