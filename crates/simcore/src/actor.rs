//! Actors: the unit of behaviour in the simulation.
//!
//! Every middleware component (broker, servlet container, generator client,
//! NIC driver…) is an actor. Actors receive type-erased messages through
//! [`Actor::handle`] and interact with the world exclusively through the
//! [`crate::Context`] passed to them — scheduling future messages, sending
//! to other actors, drawing randomness, and touching shared services.

use crate::event::Payload;
use crate::kernel::Context;
use std::fmt;

/// Identifies an actor within one simulation. Stable for the lifetime of
/// the simulation (actors are never removed, only deactivated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(u32);

impl ActorId {
    /// Sentinel id used before registration; never dispatched to.
    pub const NONE: ActorId = ActorId(u32::MAX);

    /// Construct from a raw slab index (kernel use and tests).
    pub fn from_index(ix: usize) -> Self {
        ActorId(ix as u32)
    }

    /// Raw slab index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Behaviour attached to an [`ActorId`].
pub trait Actor {
    /// Deliver one message. `ctx.self_id()` is this actor's id and
    /// `ctx.now()` the current virtual time.
    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>);

    /// Called once when the simulation starts (before any event fires), in
    /// registration order. Default: nothing.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Human-readable name for traces. Default: type name.
    fn name(&self) -> &str {
        std::any::type_name::<Self>()
    }
}

/// A no-op actor that silently drops everything sent to it. Useful as a
/// sink in tests and as a placeholder for torn-down components.
#[derive(Debug, Default)]
pub struct NullActor;

impl Actor for NullActor {
    fn handle(&mut self, _msg: Payload, _ctx: &mut Context<'_>) {}
    fn name(&self) -> &str {
        "null"
    }
}

/// An actor built from a closure; convenient in tests.
pub struct FnActor<F>(pub F);

impl<F: FnMut(Payload, &mut Context<'_>)> Actor for FnActor<F> {
    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        (self.0)(msg, ctx)
    }
    fn name(&self) -> &str {
        "fn-actor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_roundtrip() {
        let id = ActorId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(format!("{id}"), "actor#17");
        assert_ne!(id, ActorId::NONE);
    }
}
