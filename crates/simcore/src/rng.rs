//! Deterministic pseudo-random number generation for simulations.
//!
//! The kernel owns a single [`SimRng`] (xoshiro256++), seeded once per
//! experiment. Actors draw from it through their [`crate::Context`], so a
//! given seed always produces a bit-identical event history regardless of
//! host platform or dependency versions — a property the reproduction
//! harness relies on.
//!
//! xoshiro256++ is implemented here (public-domain algorithm by Blackman &
//! Vigna) instead of pulling a RNG crate so that the stream is frozen
//! forever.

use crate::time::SimDuration;

/// SplitMix64, used to expand a single `u64` seed into the 256-bit xoshiro
/// state and to derive independent sub-streams.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from Box–Muller.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent generator for a sub-stream (e.g. one per
    /// generator actor) without perturbing this stream's future output.
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix the current state with the stream id through splitmix.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xD2B7_4407_B1CE_6E93);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`. Uses the top 53 bits for a dyadic uniform.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection zone keeps the distribution exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially-distributed float with the given mean.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        // Avoid ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (caches the spare variate).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.standard_normal()
    }

    /// Uniform duration in `[lo, hi]` (inclusive, microsecond resolution).
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.range_u64(lo.as_micros(), hi.as_micros()))
    }

    /// Exponentially-distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.exp_f64(mean.as_micros() as f64).round() as u64)
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let root = SimRng::new(7);
        let mut d1 = root.derive(3);
        let mut d2 = root.derive(3);
        let mut d3 = root.derive(4);
        let v1: Vec<u64> = (0..16).map(|_| d1.next_u64()).collect();
        let v2: Vec<u64> = (0..16).map(|_| d2.next_u64()).collect();
        let v3: Vec<u64> = (0..16).map(|_| d3.next_u64()).collect();
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_within_bound_and_covers() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut rng = SimRng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.range_u64(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn uniform_mean_close() {
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = SimRng::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exp_f64(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean={mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(19);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn chance_edge_cases() {
        let mut rng = SimRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn duration_helpers() {
        let mut rng = SimRng::new(29);
        for _ in 0..1000 {
            let d =
                rng.duration_between(SimDuration::from_millis(10), SimDuration::from_millis(20));
            assert!(d >= SimDuration::from_millis(10));
            assert!(d <= SimDuration::from_millis(20));
        }
        let mean = SimDuration::from_millis(100);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.exp_duration(mean).as_micros()).sum();
        let avg = sum as f64 / n as f64;
        assert!((avg - 100_000.0).abs() < 3_000.0, "avg={avg}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(31);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Overwhelmingly likely to actually move something.
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }
}
