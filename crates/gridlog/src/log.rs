//! The durable storage plane: append-only segments, partitions, and the
//! key-hash partitioner.
//!
//! Everything in this module survives a broker crash (it models data
//! synced to disk); the broker's volatile state — connections, group
//! membership, parked fetches — lives in `broker.rs` and is wiped by
//! [`simfault::FaultSignal::BrokerCrash`].

use crate::protocol::FetchedRecord;
use telemetry::ProbeId;
use wire::Message;

/// One record at rest in a segment.
#[derive(Debug, Clone)]
pub struct StoredRecord {
    /// Telemetry probe threaded from the produce call.
    pub probe: ProbeId,
    /// Partitioning key.
    pub key: u32,
    /// The payload.
    pub message: Message,
}

/// One append-only segment file: a base offset plus a dense run of
/// records. The log rolls a new segment every `segment_records` appends.
#[derive(Debug, Default)]
pub struct Segment {
    /// Offset of the first record in this segment.
    pub base_offset: u64,
    /// The records, offset `base_offset + index`.
    pub records: Vec<StoredRecord>,
}

/// One partition: an ordered list of segments and the next offset to
/// assign. Offsets are dense and monotonic; nothing is ever deleted
/// (retention is out of scope for runs this short).
#[derive(Debug)]
pub struct PartitionLog {
    segments: Vec<Segment>,
    next_offset: u64,
    segment_records: u64,
}

impl PartitionLog {
    /// Empty partition rolling segments every `segment_records` appends.
    pub fn new(segment_records: u64) -> Self {
        PartitionLog {
            segments: Vec::new(),
            next_offset: 0,
            segment_records: segment_records.max(1),
        }
    }

    /// Append one record, returning its assigned offset.
    pub fn append(&mut self, record: StoredRecord) -> u64 {
        let offset = self.next_offset;
        self.next_offset += 1;
        let roll = match self.segments.last() {
            None => true,
            Some(s) => s.records.len() as u64 >= self.segment_records,
        };
        if roll {
            self.segments.push(Segment {
                base_offset: offset,
                records: Vec::new(),
            });
        }
        self.segments
            .last_mut()
            .expect("just ensured")
            .records
            .push(record);
        offset
    }

    /// One past the last assigned offset (0 for an empty partition).
    pub fn end_offset(&self) -> u64 {
        self.next_offset
    }

    /// Total records across all segments.
    pub fn len(&self) -> u64 {
        self.next_offset
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.next_offset == 0
    }

    /// Number of segments rolled so far.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Read up to `max` records starting at `offset`, as fetch-response
    /// records. Offsets below 0 or at/after the end yield fewer (or no)
    /// records, never an error — exactly Kafka's fetch semantics.
    pub fn read_from(&self, offset: u64, max: usize) -> Vec<FetchedRecord> {
        let mut out = Vec::new();
        if offset >= self.next_offset || max == 0 {
            return out;
        }
        // Find the segment containing `offset` (segments are sorted by
        // base offset and dense).
        let seg_ix = match self
            .segments
            .binary_search_by_key(&offset, |s| s.base_offset)
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let mut at = offset;
        for seg in &self.segments[seg_ix..] {
            if out.len() >= max {
                break;
            }
            let skip = (at.saturating_sub(seg.base_offset)) as usize;
            for (i, rec) in seg.records.iter().enumerate().skip(skip) {
                if out.len() >= max {
                    break;
                }
                out.push(FetchedRecord {
                    probe: rec.probe,
                    offset: seg.base_offset + i as u64,
                    key: rec.key,
                    message: rec.message.clone(),
                });
                at = seg.base_offset + i as u64 + 1;
            }
        }
        out
    }
}

/// One topic's partitions, indexed by the broker-local
/// [`wire::TopicId`] that named it.
#[derive(Debug)]
pub struct TopicLog {
    /// Interned id of this topic in the broker's table.
    pub id: wire::TopicId,
    /// The partitions.
    pub partitions: Vec<PartitionLog>,
}

impl TopicLog {
    /// Create a topic with `partitions` empty partitions.
    pub fn new(id: wire::TopicId, partitions: u32, segment_records: u64) -> Self {
        TopicLog {
            id,
            partitions: (0..partitions)
                .map(|_| PartitionLog::new(segment_records))
                .collect(),
        }
    }

    /// Total records across all partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(PartitionLog::len).sum()
    }
}

/// Key-hash partition assignment (Fibonacci multiplicative hash — the
/// key space is the dense generator-id range, which a plain modulus
/// would stripe pathologically).
pub fn partition_for(key: u32, partitions: u32) -> u32 {
    debug_assert!(partitions > 0);
    (key.wrapping_mul(0x9E37_79B1) >> 16) % partitions.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use wire::{Headers, MessageId};

    fn rec(n: u64) -> StoredRecord {
        StoredRecord {
            probe: ProbeId(n),
            key: n as u32,
            message: Message::text(
                Headers::new(MessageId(n), "power.monitor", SimTime::ZERO),
                "x",
            ),
        }
    }

    #[test]
    fn offsets_are_dense_and_segments_roll() {
        let mut p = PartitionLog::new(4);
        for n in 0..10 {
            assert_eq!(p.append(rec(n)), n);
        }
        assert_eq!(p.end_offset(), 10);
        assert_eq!(p.segment_count(), 3); // 4 + 4 + 2
        let all = p.read_from(0, 100);
        assert_eq!(all.len(), 10);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
            assert_eq!(r.probe, ProbeId(i as u64));
        }
    }

    #[test]
    fn read_from_respects_offset_and_max() {
        let mut p = PartitionLog::new(3);
        for n in 0..9 {
            p.append(rec(n));
        }
        let mid = p.read_from(4, 3);
        assert_eq!(
            mid.iter().map(|r| r.offset).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert!(p.read_from(9, 5).is_empty());
        assert!(p.read_from(100, 5).is_empty());
        assert!(p.read_from(0, 0).is_empty());
        // Crossing a segment boundary mid-read.
        let cross = p.read_from(2, 4);
        assert_eq!(
            cross.iter().map(|r| r.offset).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for key in 0..1000u32 {
            let p = partition_for(key, 8);
            assert!(p < 8);
            assert_eq!(p, partition_for(key, 8));
        }
        // Dense keys must not all land in one partition.
        let hit: std::collections::HashSet<u32> = (0..64).map(|k| partition_for(k, 8)).collect();
        assert!(hit.len() >= 4, "degenerate spread: {hit:?}");
    }

    #[test]
    fn topic_log_counts_records() {
        let mut t = TopicLog::new(wire::TopicId(0), 4, 16);
        assert_eq!(t.total_records(), 0);
        for n in 0..20 {
            let p = partition_for(n as u32, 4) as usize;
            t.partitions[p].append(rec(n));
        }
        assert_eq!(t.total_records(), 20);
    }
}
