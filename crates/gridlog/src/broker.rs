//! The log-broker actor: connection acceptance (thread-per-connection),
//! batch appends with producer idempotence, consumer-group coordination
//! (join/leave/expiry → rebalance), long-poll fetch parking, offset
//! commits, and crash-restart with segment replay.
//!
//! Durability contract (what [`simfault::FaultSignal::BrokerCrash`]
//! does *not* wipe): log segments, group committed offsets, and the
//! per-producer idempotence sequences — these model state synced to
//! disk. Connections, group membership, assignments, and parked fetches
//! are volatile and die with the process.

use crate::config::{GridlogConfig, OffsetReset};
use crate::log::{partition_for, StoredRecord, TopicLog};
use crate::protocol::{
    fetch_response_bytes, offsets_bytes, BrokerToClient, ClientToBroker, CONTROL_FRAME_BYTES,
};
use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime};
use simnet::{ConnId, Delivery, Endpoint, NetworkFabric};
use simos::{NodeId, OsModel, ProcessId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use wire::TopicId;

/// Timer payload the kernel routes back to the broker.
pub struct BrokerTimer(pub u64);

/// Log-broker statistics, readable after a run via
/// [`LogBroker::stats_handle`].
#[derive(Debug, Default, Clone)]
pub struct LogBrokerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused (OOM).
    pub refused: u64,
    /// Produce batches appended.
    pub batches: u64,
    /// Records appended across all batches.
    pub appended: u64,
    /// Duplicate produce batches filtered by idempotence sequences.
    pub dup_batches: u64,
    /// Fetch responses served (including empty long-poll expiries).
    pub fetches: u64,
    /// Records served in fetch responses.
    pub records_served: u64,
    /// Offset-commit requests applied.
    pub commits: u64,
    /// Group rebalances performed.
    pub rebalances: u64,
    /// Members expelled by session timeout.
    pub expired_members: u64,
    /// Times this broker's process was crashed by fault injection.
    pub crashes: u64,
    /// Records scanned during crash-restart segment replay.
    pub replayed_records: u64,
}

/// Shared handle for reading the broker's stats after the simulation.
pub type StatsHandle = std::rc::Rc<std::cell::RefCell<LogBrokerStats>>;

/// One consumer-group member (volatile).
struct Member {
    conn: ConnId,
    reset: OffsetReset,
    last_seen: SimTime,
    /// The session timer arms lazily on the first heartbeat, so
    /// heartbeat-free paper-mode runs never expire members.
    session_armed: bool,
}

/// One consumer group. `committed` is durable; everything else dies
/// with the process.
struct Group {
    topic: Option<TopicId>,
    epoch: u64,
    members: BTreeMap<u64, Member>,
    assignment: BTreeMap<u64, Vec<u32>>,
    /// Durable committed offsets: partition → next offset to consume.
    committed: BTreeMap<u32, u64>,
}

impl Group {
    fn new() -> Self {
        Group {
            topic: None,
            epoch: 0,
            members: BTreeMap::new(),
            assignment: BTreeMap::new(),
            committed: BTreeMap::new(),
        }
    }
}

/// A fetch waiting at the broker for data to arrive (long poll).
struct ParkedFetch {
    token: u64,
    conn: ConnId,
    epoch: u64,
    offset: u64,
}

enum TimerKind {
    /// Long-poll expiry: answer the parked fetch with an empty response.
    FetchExpire { topic: TopicId, partition: u32 },
    /// Session liveness check for one group member.
    SessionCheck { group: String, member: u64 },
}

/// The log-broker actor.
pub struct LogBroker {
    cfg: GridlogConfig,
    node: NodeId,
    proc: ProcessId,
    endpoint: Endpoint, // actor id filled in on_start
    /// Broker-local topic interning table; `logs` is indexed by the
    /// dense [`TopicId`]s it hands out.
    topics: wire::TopicTable,
    /// Per-topic partitioned logs (durable).
    logs: Vec<TopicLog>,
    /// Per-producer idempotence sequences (durable, as Kafka stores
    /// producer state in the log itself).
    producer_seqs: BTreeMap<u64, u64>,
    /// Consumer groups (committed offsets durable, membership volatile).
    groups: BTreeMap<String, Group>,
    /// Parked long-poll fetches keyed by (topic, partition).
    parked: BTreeMap<(TopicId, u32), Vec<ParkedFetch>>,
    conns: HashSet<ConnId>,
    timers: HashMap<u64, TimerKind>,
    next_timer: u64,
    /// True while the process is fault-crashed: network input evaporates.
    crashed: bool,
    stats: StatsHandle,
}

impl LogBroker {
    /// Create a log broker to be hosted on `node` inside process `proc`.
    pub fn new(cfg: GridlogConfig, node: NodeId, proc: ProcessId) -> Self {
        LogBroker {
            cfg,
            node,
            proc,
            endpoint: Endpoint::new(node, ActorId::NONE),
            topics: wire::TopicTable::new(),
            logs: Vec::new(),
            producer_seqs: BTreeMap::new(),
            groups: BTreeMap::new(),
            parked: BTreeMap::new(),
            conns: HashSet::new(),
            timers: HashMap::new(),
            next_timer: 0,
            crashed: false,
            stats: StatsHandle::default(),
        }
    }

    /// Handle to this broker's statistics (clone before `add_actor`).
    pub fn stats_handle(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// The node this broker runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn cpu(&self, ctx: &mut Context<'_>, comp: simprof::Component, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, comp, effective);
            done
        })
    }

    fn per_byte(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros((bytes as u64 * self.cfg.costs.broker_per_byte_ns).div_ceil(1000))
    }

    fn send_to_client(
        &self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        bytes: usize,
        msg: BrokerToClient,
        at: SimTime,
    ) {
        let ep = self.endpoint;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(ctx, conn, ep, bytes, Box::new(msg), at);
        });
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_>, delay: SimDuration, kind: TimerKind) -> u64 {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, kind);
        ctx.timer(delay, BrokerTimer(token));
        token
    }

    /// Intern `topic`, creating its partitioned log on first use.
    fn topic_log(&mut self, topic: &str) -> TopicId {
        let tid = self.topics.intern(topic);
        if tid.0 as usize >= self.logs.len() {
            self.logs.push(TopicLog::new(
                tid,
                self.cfg.partitions,
                self.cfg.segment_records,
            ));
        }
        tid
    }

    fn on_connect(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let accept_result = ctx.with_service::<OsModel, _>(|os, _| {
            os.spawn_thread(self.proc).and_then(|()| {
                match os.alloc(self.proc, self.cfg.memory.heap_per_conn) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        os.kill_thread(self.proc);
                        Err(e)
                    }
                }
            })
        });
        match accept_result {
            Ok(()) => {
                simprof::hit(ctx, simprof::Component::OsSched);
                let done = self.cpu(
                    ctx,
                    simprof::Component::GridlogRebalance,
                    self.cfg.costs.broker_accept,
                );
                self.conns.insert(conn);
                self.stats.borrow_mut().accepted += 1;
                self.send_to_client(
                    ctx,
                    conn,
                    CONTROL_FRAME_BYTES,
                    BrokerToClient::ConnectOk,
                    done,
                );
            }
            Err(e) => {
                self.stats.borrow_mut().refused += 1;
                let now = ctx.now();
                self.send_to_client(
                    ctx,
                    conn,
                    CONTROL_FRAME_BYTES,
                    BrokerToClient::ConnectRefused {
                        reason: e.to_string(),
                    },
                    now,
                );
            }
        }
    }

    fn on_disconnect(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        if self.conns.remove(&conn) {
            let heap = self.cfg.memory.heap_per_conn;
            ctx.with_service::<OsModel, _>(|os, _| {
                os.kill_thread(self.proc);
                os.free(self.proc, heap);
            });
            simprof::hit(ctx, simprof::Component::OsSched);
            // Membership is not torn down here: the session timer (or an
            // explicit LeaveGroup) collects members of dead connections.
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_produce(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        producer_id: u64,
        batch_seq: u64,
        topic: String,
        records: Vec<crate::protocol::ProducerRecord>,
        retransmit: bool,
        wire_bytes: usize,
    ) {
        if !self.conns.contains(&conn) {
            return; // connection refused / unknown: drop
        }
        // Idempotent producer: a batch at or below the durable sequence
        // was already appended — re-acknowledge without re-appending, so
        // post-crash retransmissions never duplicate records.
        if retransmit {
            if let Some(&last) = self.producer_seqs.get(&producer_id) {
                if batch_seq <= last {
                    self.stats.borrow_mut().dup_batches += 1;
                    let done = self.cpu(
                        ctx,
                        simprof::Component::GridlogAppend,
                        self.cfg.costs.broker_append_base + self.per_byte(wire_bytes),
                    );
                    self.send_to_client(
                        ctx,
                        conn,
                        CONTROL_FRAME_BYTES,
                        BrokerToClient::ProduceAck { batch_seq },
                        done,
                    );
                    return;
                }
            }
        }
        self.producer_seqs.insert(producer_id, batch_seq);
        let n = records.len() as u64;
        {
            let mut st = self.stats.borrow_mut();
            st.batches += 1;
            st.appended += n;
        }
        let tid = self.topic_log(&topic);
        let cost = self.cfg.costs.broker_append_base
            + self.per_byte(wire_bytes)
            + self.cfg.costs.broker_append_per_record.saturating_mul(n);
        let done = self.cpu(ctx, simprof::Component::GridlogAppend, cost);
        let actor = self.endpoint.actor.index() as u64;
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for rec in records {
            let p = partition_for(rec.key, self.cfg.partitions);
            let probe = rec.probe;
            self.logs[tid.0 as usize].partitions[p as usize].append(StoredRecord {
                probe: rec.probe,
                key: rec.key,
                message: rec.message,
            });
            touched.insert(p);
            simtrace::with_trace(ctx, |tr, at| {
                tr.record(
                    at,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::BrokerRecv { broker: 0 },
                );
                tr.count(simtrace::Counter::BrokerPublishes, 1);
            });
        }
        telemetry::with_metrics(ctx, |m, _| {
            m.add_counter("gridlog.appended_records", n);
            m.observe("gridlog.append_cost_us", cost.as_micros());
        });
        self.send_to_client(
            ctx,
            conn,
            CONTROL_FRAME_BYTES,
            BrokerToClient::ProduceAck { batch_seq },
            done,
        );
        // Fresh data completes parked long polls on the touched
        // partitions.
        for p in touched {
            self.serve_parked(ctx, tid, p, done);
        }
    }

    /// Answer every parked fetch on `(topic, partition)` that now has
    /// data, leaving the rest parked.
    fn serve_parked(
        &mut self,
        ctx: &mut Context<'_>,
        topic: TopicId,
        partition: u32,
        floor: SimTime,
    ) {
        let end = self.logs[topic.0 as usize].partitions[partition as usize].end_offset();
        let Some(waiters) = self.parked.get_mut(&(topic, partition)) else {
            return;
        };
        let mut ready = Vec::new();
        waiters.retain(|w| {
            if w.offset < end {
                ready.push((w.conn, w.epoch, w.offset, w.token));
                false
            } else {
                true
            }
        });
        if waiters.is_empty() {
            self.parked.remove(&(topic, partition));
        }
        for (conn, epoch, offset, token) in ready {
            self.timers.remove(&token);
            self.serve_fetch(ctx, conn, topic, partition, offset, epoch, floor);
        }
    }

    /// Read records at `offset` and send them, charging the fetch path.
    #[allow(clippy::too_many_arguments)]
    fn serve_fetch(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        topic: TopicId,
        partition: u32,
        offset: u64,
        epoch: u64,
        floor: SimTime,
    ) {
        let plog = &self.logs[topic.0 as usize].partitions[partition as usize];
        let records = plog.read_from(offset, self.cfg.fetching.max_records);
        let end_offset = plog.end_offset();
        let n = records.len() as u64;
        let bytes = fetch_response_bytes(&records);
        let cost = self.cfg.costs.broker_fetch_base
            + self.cfg.costs.broker_fetch_per_record.saturating_mul(n);
        let done = self
            .cpu(ctx, simprof::Component::GridlogFetch, cost)
            .max(floor);
        {
            let mut st = self.stats.borrow_mut();
            st.fetches += 1;
            st.records_served += n;
        }
        let actor = self.endpoint.actor.index() as u64;
        for rec in &records {
            let probe = rec.probe;
            simtrace::with_trace(ctx, |tr, at| {
                tr.record(
                    at,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::BrokerDeliver {
                        broker: 0,
                        fanout: 1,
                    },
                );
                tr.count(simtrace::Counter::BrokerDeliveries, 1);
            });
        }
        telemetry::with_metrics(ctx, |m, _| {
            m.set_gauge("gridlog.fetch_batch_occupancy", n as f64);
            m.observe("gridlog.fetch_cost_us", cost.as_micros());
        });
        self.send_to_client(
            ctx,
            conn,
            bytes,
            BrokerToClient::Records {
                partition,
                epoch,
                records,
                end_offset,
            },
            done,
        );
    }

    fn on_join(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        group: String,
        member: u64,
        topic: String,
        reset: OffsetReset,
    ) {
        if !self.conns.contains(&conn) {
            return;
        }
        let tid = self.topic_log(&topic);
        let now = ctx.now();
        let g = self.groups.entry(group.clone()).or_insert_with(Group::new);
        g.topic = Some(tid);
        g.members.insert(
            member,
            Member {
                conn,
                reset,
                last_seen: now,
                session_armed: false,
            },
        );
        self.rebalance(ctx, &group);
    }

    fn on_leave(&mut self, ctx: &mut Context<'_>, group: String, member: u64) {
        let Some(g) = self.groups.get_mut(&group) else {
            return;
        };
        if g.members.remove(&member).is_none() {
            return;
        }
        g.assignment.remove(&member);
        if !g.members.is_empty() {
            self.rebalance(ctx, &group);
        }
    }

    /// Recompute the range assignment, bump the epoch, and push the new
    /// [`BrokerToClient::Assignment`] to every member.
    fn rebalance(&mut self, ctx: &mut Context<'_>, group: &str) {
        let done = self.cpu(
            ctx,
            simprof::Component::GridlogRebalance,
            self.cfg.costs.broker_rebalance,
        );
        let Some(g) = self.groups.get_mut(group) else {
            return;
        };
        let Some(tid) = g.topic else {
            return;
        };
        g.epoch += 1;
        self.stats.borrow_mut().rebalances += 1;
        let members: Vec<u64> = g.members.keys().copied().collect();
        let parts = self.cfg.partitions;
        g.assignment.clear();
        if !members.is_empty() {
            // Range assignment: contiguous partition chunks in sorted
            // member order, front-loading the remainder — deterministic
            // and identical to Kafka's RangeAssignor for one topic.
            let n = members.len() as u32;
            let base = parts / n;
            let extra = parts % n;
            let mut next = 0u32;
            for (i, m) in members.iter().enumerate() {
                let take = base + u32::from((i as u32) < extra);
                let owned: Vec<u32> = (next..next + take).collect();
                next += take;
                g.assignment.insert(*m, owned);
            }
        }
        // Drop parked fetches for this topic: owners may have changed,
        // and every member re-fetches once it sees the new assignment.
        for p in 0..parts {
            if let Some(waiters) = self.parked.remove(&(tid, p)) {
                for w in waiters {
                    self.timers.remove(&w.token);
                }
            }
        }
        telemetry::with_metrics(ctx, |m, _| m.add_counter("gridlog.rebalances", 1));
        self.push_assignments(ctx, group, done);
    }

    /// Push the current assignment (with per-member start offsets) to
    /// every member of `group`.
    fn push_assignments(&mut self, ctx: &mut Context<'_>, group: &str, at: SimTime) {
        let Some(g) = self.groups.get(group) else {
            return;
        };
        let Some(tid) = g.topic else {
            return;
        };
        let log = &self.logs[tid.0 as usize];
        let mut sends = Vec::new();
        for (member, owned) in &g.assignment {
            let Some(m) = g.members.get(member) else {
                continue;
            };
            let partitions: Vec<(u32, u64)> = owned
                .iter()
                .map(|&p| {
                    let start = match m.reset {
                        OffsetReset::Committed => g.committed.get(&p).copied().unwrap_or(0),
                        OffsetReset::Latest => log.partitions[p as usize].end_offset(),
                    };
                    (p, start)
                })
                .collect();
            sends.push((m.conn, partitions));
        }
        let epoch = g.epoch;
        let group = group.to_owned();
        for (conn, partitions) in sends {
            let bytes = offsets_bytes(partitions.len()) + group.len();
            self.send_to_client(
                ctx,
                conn,
                bytes,
                BrokerToClient::Assignment {
                    group: group.clone(),
                    epoch,
                    partitions,
                },
                at,
            );
        }
    }

    /// Re-push the current assignment to one member whose request
    /// carried a stale epoch (heals mid-rebalance races).
    fn resend_assignment(&mut self, ctx: &mut Context<'_>, group: &str, member: u64) {
        let now = ctx.now();
        let Some(g) = self.groups.get(group) else {
            return;
        };
        let (Some(tid), Some(m), Some(owned)) =
            (g.topic, g.members.get(&member), g.assignment.get(&member))
        else {
            return;
        };
        let log = &self.logs[tid.0 as usize];
        let partitions: Vec<(u32, u64)> = owned
            .iter()
            .map(|&p| {
                let start = match m.reset {
                    OffsetReset::Committed => g.committed.get(&p).copied().unwrap_or(0),
                    OffsetReset::Latest => log.partitions[p as usize].end_offset(),
                };
                (p, start)
            })
            .collect();
        let conn = m.conn;
        let epoch = g.epoch;
        let bytes = offsets_bytes(partitions.len()) + group.len();
        self.send_to_client(
            ctx,
            conn,
            bytes,
            BrokerToClient::Assignment {
                group: group.to_owned(),
                epoch,
                partitions,
            },
            now,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_fetch(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        group: String,
        member: u64,
        epoch: u64,
        partition: u32,
        offset: u64,
    ) {
        let Some(g) = self.groups.get(&group) else {
            return; // unknown group (pre-crash member): silence → rejoin
        };
        if !g.members.contains_key(&member) {
            return;
        }
        if g.epoch != epoch {
            self.resend_assignment(ctx, &group, member);
            return;
        }
        let Some(tid) = g.topic else {
            return;
        };
        if partition >= self.cfg.partitions {
            return;
        }
        let end = self.logs[tid.0 as usize].partitions[partition as usize].end_offset();
        let now = ctx.now();
        if offset < end {
            self.serve_fetch(ctx, conn, tid, partition, offset, epoch, now);
        } else {
            // Nothing to read yet: park until an append or the long-poll
            // deadline, whichever comes first.
            let max_wait = self.cfg.fetching.max_wait;
            let token = self.arm_timer(
                ctx,
                max_wait,
                TimerKind::FetchExpire {
                    topic: tid,
                    partition,
                },
            );
            self.parked
                .entry((tid, partition))
                .or_default()
                .push(ParkedFetch {
                    token,
                    conn,
                    epoch,
                    offset,
                });
        }
    }

    fn on_fetch_expire(
        &mut self,
        ctx: &mut Context<'_>,
        topic: TopicId,
        partition: u32,
        token: u64,
    ) {
        let Some(waiters) = self.parked.get_mut(&(topic, partition)) else {
            return; // served or wiped meanwhile
        };
        let Some(ix) = waiters.iter().position(|w| w.token == token) else {
            return;
        };
        let w = waiters.remove(ix);
        if waiters.is_empty() {
            self.parked.remove(&(topic, partition));
        }
        // Empty response: unblocks the consumer's poll loop with a fresh
        // end-offset observation.
        self.serve_fetch(ctx, w.conn, topic, partition, w.offset, w.epoch, ctx.now());
    }

    #[allow(clippy::too_many_arguments)]
    fn on_commit(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        group: String,
        member: u64,
        epoch: u64,
        offsets: Vec<(u32, u64)>,
    ) {
        let Some(g) = self.groups.get_mut(&group) else {
            return;
        };
        if !g.members.contains_key(&member) {
            return;
        }
        if g.epoch != epoch {
            self.resend_assignment(ctx, &group, member);
            return;
        }
        for (p, off) in offsets {
            let slot = g.committed.entry(p).or_insert(0);
            *slot = (*slot).max(off);
        }
        self.stats.borrow_mut().commits += 1;
        let done = self.cpu(
            ctx,
            simprof::Component::GridlogCommit,
            self.cfg.costs.broker_commit_process,
        );
        // End-offset lag: how far the group's durable position trails
        // the head of the log, summed over committed partitions.
        let g = self.groups.get(&group).expect("still here");
        let lag: u64 = if let Some(tid) = g.topic {
            let log = &self.logs[tid.0 as usize];
            g.committed
                .iter()
                .map(|(&p, &off)| log.partitions[p as usize].end_offset().saturating_sub(off))
                .sum()
        } else {
            0
        };
        telemetry::with_metrics(ctx, |m, _| {
            m.add_counter("gridlog.commits", 1);
            m.set_gauge("gridlog.end_offset_lag", lag as f64);
        });
        self.send_to_client(
            ctx,
            conn,
            CONTROL_FRAME_BYTES,
            BrokerToClient::CommitOk { epoch },
            done,
        );
    }

    fn on_heartbeat(&mut self, ctx: &mut Context<'_>, conn: ConnId, group: String, member: u64) {
        if !self.conns.contains(&conn) {
            return;
        }
        let now = ctx.now();
        let session = self.cfg.group.session_timeout;
        let mut arm = false;
        {
            let Some(g) = self.groups.get_mut(&group) else {
                return; // silence: the client will reconnect and rejoin
            };
            let Some(m) = g.members.get_mut(&member) else {
                return;
            };
            m.conn = conn;
            m.last_seen = now;
            if !m.session_armed {
                m.session_armed = true;
                arm = true;
            }
        }
        if arm {
            self.arm_timer(ctx, session, TimerKind::SessionCheck { group, member });
        }
        self.send_to_client(ctx, conn, CONTROL_FRAME_BYTES, BrokerToClient::Pong, now);
    }

    fn on_session_check(&mut self, ctx: &mut Context<'_>, group: String, member: u64) {
        let now = ctx.now();
        let session = self.cfg.group.session_timeout;
        let remaining = {
            let Some(g) = self.groups.get_mut(&group) else {
                return;
            };
            let Some(m) = g.members.get_mut(&member) else {
                return;
            };
            let silence = now.saturating_since(m.last_seen);
            if silence >= session {
                None
            } else {
                // Re-check when the current silence would hit the limit.
                m.session_armed = true;
                Some(session - silence)
            }
        };
        if let Some(remaining) = remaining {
            self.arm_timer(ctx, remaining, TimerKind::SessionCheck { group, member });
        } else {
            let g = self.groups.get_mut(&group).expect("checked above");
            g.members.remove(&member);
            g.assignment.remove(&member);
            self.stats.borrow_mut().expired_members += 1;
            telemetry::with_metrics(ctx, |m, _| m.add_counter("gridlog.expired_members", 1));
            if !self.groups[&group].members.is_empty() {
                self.rebalance(ctx, &group);
            }
        }
    }

    /// Fault injection kills the process: connections, threads, group
    /// membership, and parked fetches are lost; the segments, committed
    /// offsets, and producer sequences survive on disk.
    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.stats.borrow_mut().crashes += 1;
        let mut conn_ids: Vec<ConnId> = self.conns.iter().copied().collect();
        conn_ids.sort_unstable_by_key(|c| c.0);
        let heap = self.cfg.memory.heap_per_conn;
        for _conn in conn_ids {
            ctx.with_service::<OsModel, _>(|os, _| {
                os.kill_thread(self.proc);
                os.free(self.proc, heap);
            });
        }
        self.conns.clear();
        for g in self.groups.values_mut() {
            g.members.clear();
            g.assignment.clear();
            // g.epoch deliberately kept: pre-crash epochs stay stale
            // after the restart, so a surviving client can never fetch
            // under an old assignment.
        }
        self.parked.clear();
        self.timers.clear();
    }

    /// Restart replays the durable segments (sequential scan, charged to
    /// the rebalance component) and counts the records that the durable
    /// committed offsets will re-deliver — the recovery the CLIENT-mode
    /// narada resync performs with its stable log.
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        let total: u64 = self.logs.iter().map(TopicLog::total_records).sum();
        if total > 0 {
            let cost = self
                .cfg
                .costs
                .broker_replay_per_record
                .saturating_mul(total);
            self.cpu(ctx, simprof::Component::GridlogRebalance, cost);
        }
        self.stats.borrow_mut().replayed_records += total;
        // Messages preserved by durability: the tail between each
        // committed offset and the log end. Groups that never committed
        // (auto/Latest mode) recover nothing.
        let mut recovered: u64 = 0;
        for g in self.groups.values() {
            let Some(tid) = g.topic else { continue };
            let log = &self.logs[tid.0 as usize];
            recovered += g
                .committed
                .iter()
                .map(|(&p, &off)| log.partitions[p as usize].end_offset().saturating_sub(off))
                .sum::<u64>();
        }
        if recovered > 0 {
            simfault::with_faults(ctx, |inj, _| inj.stats.recovered += recovered);
            simtrace::with_trace(ctx, |tr, _| {
                tr.count(simtrace::Counter::FaultRecoveries, recovered);
            });
        }
    }
}

impl Actor for LogBroker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.endpoint = Endpoint::new(self.node, ctx.self_id());
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        // Own timers first: their state (parked fetches, members) was
        // wiped by any crash, so stale fires are naturally inert.
        let msg = match msg.downcast::<BrokerTimer>() {
            Ok(timer) => {
                let Some(kind) = self.timers.remove(&timer.0) else {
                    return; // cancelled or wiped
                };
                match kind {
                    TimerKind::FetchExpire { topic, partition } => {
                        self.on_fetch_expire(ctx, topic, partition, timer.0)
                    }
                    TimerKind::SessionCheck { group, member } => {
                        self.on_session_check(ctx, group, member)
                    }
                }
                return;
            }
            Err(m) => m,
        };
        // Fault injection: crash/restart signals arrive directly from
        // the fault driver, not over the network, so a crashed broker
        // still hears its own restart.
        let msg = match msg.downcast::<simfault::FaultSignal>() {
            Ok(sig) => {
                match *sig {
                    simfault::FaultSignal::BrokerCrash => self.on_crash(ctx),
                    simfault::FaultSignal::BrokerRestart => self.on_restart(ctx),
                    simfault::FaultSignal::RegistryRestart => {}
                }
                return;
            }
            Err(m) => m,
        };
        // Network deliveries.
        let Ok(delivery) = msg.downcast::<Delivery>() else {
            return; // unknown message type: ignore
        };
        if self.crashed {
            // A dead process: every frame aimed at it evaporates.
            simfault::with_faults(ctx, |inj, _| inj.stats.crash_drops += 1);
            simtrace::with_trace(ctx, |tr, _| {
                tr.count(simtrace::Counter::FaultDrops, 1);
            });
            return;
        }
        let Delivery {
            conn,
            bytes,
            payload,
            ..
        } = *delivery;
        let Ok(c2b) = payload.downcast::<ClientToBroker>() else {
            return;
        };
        match *c2b {
            ClientToBroker::Connect => self.on_connect(ctx, conn),
            ClientToBroker::Disconnect => self.on_disconnect(ctx, conn),
            ClientToBroker::Produce {
                producer_id,
                batch_seq,
                topic,
                records,
                retransmit,
            } => self.on_produce(
                ctx,
                conn,
                producer_id,
                batch_seq,
                topic,
                records,
                retransmit,
                bytes,
            ),
            ClientToBroker::JoinGroup {
                group,
                member,
                topic,
                reset,
            } => self.on_join(ctx, conn, group, member, topic, reset),
            ClientToBroker::LeaveGroup { group, member } => self.on_leave(ctx, group, member),
            ClientToBroker::Fetch {
                group,
                member,
                epoch,
                partition,
                offset,
            } => self.on_fetch(ctx, conn, group, member, epoch, partition, offset),
            ClientToBroker::CommitOffsets {
                group,
                member,
                epoch,
                offsets,
            } => self.on_commit(ctx, conn, group, member, epoch, offsets),
            ClientToBroker::Heartbeat { group, member } => {
                self.on_heartbeat(ctx, conn, group, member)
            }
            ClientToBroker::Ping => {
                // Only connections this incarnation accepted get an
                // answer; pings on pre-crash connections go unanswered
                // and trigger client-side detection.
                if self.conns.contains(&conn) {
                    let now = ctx.now();
                    self.send_to_client(ctx, conn, CONTROL_FRAME_BYTES, BrokerToClient::Pong, now);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "gridlog-broker"
    }
}
