//! Wire protocol between gridlog clients and the log broker.
//!
//! These enums travel as [`simnet::Delivery`] payloads, exactly like the
//! narada protocol does. Sizes on the wire are computed from the carried
//! messages (`wire::Message::wire_size`) plus fixed framing modeled on
//! the Kafka v2 record-batch format.

use crate::config::OffsetReset;
use telemetry::ProbeId;
use wire::Message;

/// Framing bytes for control messages (type tag + ids).
pub const CONTROL_FRAME_BYTES: usize = 32;
/// Record-batch header (the Kafka v2 `RecordBatch` header is 61 bytes).
pub const BATCH_HEADER_BYTES: usize = 61;
/// Per-record framing inside a batch (length, attributes, offset delta,
/// timestamp delta, key length).
pub const RECORD_OVERHEAD_BYTES: usize = 12;

/// One record as produced: the partitioning key plus the payload.
#[derive(Debug, Clone)]
pub struct ProducerRecord {
    /// Telemetry probe of the originating produce call (carried, not
    /// transmitted — it stands in for the producer timestamp).
    pub probe: ProbeId,
    /// Partitioning key (hashed to pick the partition).
    pub key: u32,
    /// The payload.
    pub message: Message,
}

/// One record as fetched: the payload plus its position in the log.
#[derive(Debug, Clone)]
pub struct FetchedRecord {
    /// Telemetry probe threaded from the produce call.
    pub probe: ProbeId,
    /// Offset within the partition.
    pub offset: u64,
    /// Partitioning key.
    pub key: u32,
    /// The payload.
    pub message: Message,
}

/// Client → broker.
pub enum ClientToBroker {
    /// Open a connection (broker spawns a service thread or refuses).
    Connect,
    /// Close the connection (broker frees the thread).
    Disconnect,
    /// Append a batch of records to a topic.
    Produce {
        /// Stable producer identity (idempotence key, durable at the
        /// broker like Kafka's producer-id state in the log).
        producer_id: u64,
        /// Monotonic per-producer batch sequence (duplicate filter for
        /// post-crash retransmissions).
        batch_seq: u64,
        /// Destination topic.
        topic: String,
        /// The records.
        records: Vec<ProducerRecord>,
        /// True if this batch may already have been appended.
        retransmit: bool,
    },
    /// Join a consumer group (also the implicit group/topic creation).
    JoinGroup {
        /// Group name.
        group: String,
        /// Stable member identity.
        member: u64,
        /// Topic the group consumes.
        topic: String,
        /// Where this member starts on partitions it has no position for.
        reset: OffsetReset,
    },
    /// Leave a consumer group (triggers a rebalance).
    LeaveGroup {
        /// Group name.
        group: String,
        /// Member identity.
        member: u64,
    },
    /// Long-poll fetch from one assigned partition.
    Fetch {
        /// Group name.
        group: String,
        /// Member identity.
        member: u64,
        /// Assignment epoch the member believes is current; stale epochs
        /// are answered with a fresh [`BrokerToClient::Assignment`].
        epoch: u64,
        /// Partition to read.
        partition: u32,
        /// First offset wanted.
        offset: u64,
    },
    /// Flush the member's consumed positions to the group's durable
    /// committed offsets.
    CommitOffsets {
        /// Group name.
        group: String,
        /// Member identity.
        member: u64,
        /// Assignment epoch.
        epoch: u64,
        /// (partition, next offset to consume) pairs.
        offsets: Vec<(u32, u64)>,
    },
    /// Consumer-group liveness: refreshes the member's session at the
    /// broker. A broker that is up answers [`BrokerToClient::Pong`] *only
    /// if* the member is still in the group — silence tells an expelled
    /// or pre-crash member to reconnect and rejoin.
    Heartbeat {
        /// Group name.
        group: String,
        /// Member identity.
        member: u64,
    },
    /// Producer liveness probe (no group attached).
    Ping,
}

/// Broker → client.
pub enum BrokerToClient {
    /// Connection accepted.
    ConnectOk,
    /// Connection refused (out of memory for the service thread).
    ConnectRefused {
        /// Human-readable reason.
        reason: String,
    },
    /// A produce batch is durably appended (or was already, if the
    /// batch was a duplicate retransmission).
    ProduceAck {
        /// Batch sequence being acknowledged.
        batch_seq: u64,
    },
    /// The member's current partition assignment, pushed on every
    /// rebalance and re-pushed when a stale-epoch request arrives.
    Assignment {
        /// Group name.
        group: String,
        /// New assignment epoch.
        epoch: u64,
        /// (partition, start offset) pairs this member now owns.
        partitions: Vec<(u32, u64)>,
    },
    /// Fetch response: a run of records from one partition.
    Records {
        /// Partition these records came from.
        partition: u32,
        /// Epoch of the fetch being answered (stale responses are
        /// discarded by the client).
        epoch: u64,
        /// The records, offset-ordered. Empty when the long-poll timer
        /// expired with no data.
        records: Vec<FetchedRecord>,
        /// The partition's end offset at response time (lag signal).
        end_offset: u64,
    },
    /// Offset commit applied.
    CommitOk {
        /// Epoch of the commit being answered.
        epoch: u64,
    },
    /// Liveness answer to [`ClientToBroker::Ping`] and in-group
    /// [`ClientToBroker::Heartbeat`].
    Pong,
}

/// Wire size of a produce batch.
pub fn produce_bytes(records: &[ProducerRecord]) -> usize {
    BATCH_HEADER_BYTES
        + records
            .iter()
            .map(|r| r.message.wire_size() + RECORD_OVERHEAD_BYTES)
            .sum::<usize>()
}

/// Wire size of a fetch response.
pub fn fetch_response_bytes(records: &[FetchedRecord]) -> usize {
    BATCH_HEADER_BYTES
        + records
            .iter()
            .map(|r| r.message.wire_size() + RECORD_OVERHEAD_BYTES)
            .sum::<usize>()
}

/// Wire size of an assignment push or an offset-commit request.
pub fn offsets_bytes(pairs: usize) -> usize {
    CONTROL_FRAME_BYTES + pairs * 12
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use wire::{Headers, MessageId};

    #[test]
    fn byte_helpers_add_framing() {
        let m = Message::text(Headers::new(MessageId(1), "t", SimTime::ZERO), "body");
        let rec = ProducerRecord {
            probe: ProbeId(0),
            key: 7,
            message: m.clone(),
        };
        assert_eq!(
            produce_bytes(std::slice::from_ref(&rec)),
            BATCH_HEADER_BYTES + m.wire_size() + RECORD_OVERHEAD_BYTES
        );
        let fr = FetchedRecord {
            probe: ProbeId(0),
            offset: 0,
            key: 7,
            message: m.clone(),
        };
        assert_eq!(
            fetch_response_bytes(&[fr.clone(), fr]),
            BATCH_HEADER_BYTES + 2 * (m.wire_size() + RECORD_OVERHEAD_BYTES)
        );
        assert_eq!(offsets_bytes(0), CONTROL_FRAME_BYTES);
        assert!(offsets_bytes(8) > offsets_bytes(1));
    }
}
