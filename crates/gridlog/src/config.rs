//! Configuration and CPU cost model for the partitioned-log broker.
//!
//! Like narada's [`CostModel`], the constants here are *inputs* to the
//! mechanisms, scaled to the same reference node (Pentium III 866 MHz):
//! the shape of the RTT distribution — linger-dominated produce latency,
//! amortized batch fetches, the long-poll cadence — emerges from the
//! protocol, not from these numbers directly.
//!
//! [`CostModel`]: struct.CostModel.html

use simcore::SimDuration;
use simos::Bytes;

/// Per-operation CPU costs on the log broker and client JVMs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Client: serialize a produce batch (fixed part).
    pub client_serialize_base: SimDuration,
    /// Client: serialize, per byte.
    pub client_serialize_per_byte_ns: u64,
    /// Client: deserialize + hand one fetched record to the listener
    /// (fixed part).
    pub client_deliver_base: SimDuration,
    /// Client: deserialize, per byte.
    pub client_deliver_per_byte_ns: u64,
    /// Broker: accept + deserialize a produce batch (fixed part).
    pub broker_append_base: SimDuration,
    /// Broker: per-byte deserialize/copy cost.
    pub broker_per_byte_ns: u64,
    /// Broker: assign an offset and append one record to its segment.
    pub broker_append_per_record: SimDuration,
    /// Broker: serve one fetch (fixed part: offset lookup, response
    /// assembly).
    pub broker_fetch_base: SimDuration,
    /// Broker: serialize one record into a fetch response.
    pub broker_fetch_per_record: SimDuration,
    /// Broker: process one offset-commit request.
    pub broker_commit_process: SimDuration,
    /// Broker: recompute the group assignment on join/leave/expiry.
    pub broker_rebalance: SimDuration,
    /// Broker: cost to accept a connection and start its thread.
    pub broker_accept: SimDuration,
    /// Broker: scan one record while replaying segments after a
    /// crash-restart (sequential read, much cheaper than an append).
    pub broker_replay_per_record: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            client_serialize_base: SimDuration::from_micros(100),
            client_serialize_per_byte_ns: 300,
            client_deliver_base: SimDuration::from_micros(120),
            client_deliver_per_byte_ns: 300,
            broker_append_base: SimDuration::from_micros(250),
            broker_per_byte_ns: 400,
            broker_append_per_record: SimDuration::from_micros(40),
            broker_fetch_base: SimDuration::from_micros(200),
            broker_fetch_per_record: SimDuration::from_micros(25),
            broker_commit_process: SimDuration::from_micros(150),
            broker_rebalance: SimDuration::from_micros(500),
            broker_accept: SimDuration::from_micros(1_500),
            broker_replay_per_record: SimDuration::from_micros(2),
        }
    }
}

/// Producer batching: records accumulate per connection until the batch
/// fills or the linger timer fires (Kafka's `linger.ms`/`batch.size`).
#[derive(Debug, Clone, Copy)]
pub struct Batching {
    /// How long a non-full batch waits for more records.
    pub linger: SimDuration,
    /// Records per batch before an immediate flush.
    pub max_records: usize,
}

impl Default for Batching {
    fn default() -> Self {
        Batching {
            linger: SimDuration::from_millis(5),
            max_records: 64,
        }
    }
}

/// Consumer fetch shaping: long-poll parking and batch bounds
/// (Kafka's `fetch.max.wait.ms`/`max.poll.records`).
#[derive(Debug, Clone, Copy)]
pub struct Fetching {
    /// A fetch with no data parks at the broker this long before an
    /// empty response unblocks the consumer's poll loop.
    pub max_wait: SimDuration,
    /// Records per fetch response.
    pub max_records: usize,
}

impl Default for Fetching {
    fn default() -> Self {
        Fetching {
            max_wait: SimDuration::from_millis(500),
            max_records: 512,
        }
    }
}

/// Consumer-group timing: commit cadence and broker-side liveness.
#[derive(Debug, Clone, Copy)]
pub struct GroupPolicy {
    /// Committed-mode consumers flush offset commits at this interval.
    pub commit_interval: SimDuration,
    /// Broker expels a member silent for longer than this (the session
    /// timer only arms once a member's first heartbeat arrives, so
    /// heartbeat-free paper-mode runs never expire anyone).
    pub session_timeout: SimDuration,
}

impl Default for GroupPolicy {
    fn default() -> Self {
        GroupPolicy {
            commit_interval: SimDuration::from_secs(5),
            session_timeout: SimDuration::from_secs(10),
        }
    }
}

/// Broker memory model.
#[derive(Debug, Clone)]
pub struct BrokerMemory {
    /// Heap retained per live connection (session, socket buffers).
    /// Log segments are modeled as disk-backed (page cache pressure is
    /// out of scope), so connections are the only heap consumers.
    pub heap_per_conn: Bytes,
}

impl Default for BrokerMemory {
    fn default() -> Self {
        BrokerMemory {
            heap_per_conn: Bytes::kib(120),
        }
    }
}

/// Full configuration for one log-broker deployment.
#[derive(Debug, Clone)]
pub struct GridlogConfig {
    /// CPU cost model.
    pub costs: CostModel,
    /// Producer batching.
    pub batching: Batching,
    /// Fetch shaping.
    pub fetching: Fetching,
    /// Consumer-group timing.
    pub group: GroupPolicy,
    /// Memory model.
    pub memory: BrokerMemory,
    /// Partitions per topic (fixed at topic creation, like Kafka).
    pub partitions: u32,
    /// Records per append-only segment before the log rolls a new one.
    pub segment_records: u64,
}

impl Default for GridlogConfig {
    fn default() -> Self {
        GridlogConfig {
            costs: CostModel::default(),
            batching: Batching::default(),
            fetching: Fetching::default(),
            group: GroupPolicy::default(),
            memory: BrokerMemory::default(),
            partitions: 8,
            segment_records: 4096,
        }
    }
}

/// Where a consumer-group member starts when it is assigned a partition
/// it holds no position for — the axis the gridlog fault experiments
/// vary, mirroring the narada CLIENT-vs-AUTO acknowledge comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetReset {
    /// Resume from the group's durable committed offset (Kafka consumer
    /// with periodic offset commits): zero loss across a broker crash.
    Committed,
    /// Start at the log end offset (`auto.offset.reset=latest` with no
    /// commits): everything appended while the member was away is
    /// skipped — the crash window is lost.
    Latest,
}

/// Client-side reconnect behaviour across broker crashes, identical in
/// shape to narada's policy so the two middlewares face the same
/// fault-tolerance knobs. `None` (the default) disables liveness and
/// reconnects entirely: paper-mode runs stay heartbeat-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// How often an idle connection sends a liveness heartbeat.
    pub heartbeat_interval: SimDuration,
    /// Silence longer than this declares the broker dead.
    pub detect_timeout: SimDuration,
    /// First reconnect backoff step.
    pub backoff_initial: SimDuration,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Reconnect attempts before the connection is abandoned for good.
    pub max_attempts: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            heartbeat_interval: SimDuration::from_secs(1),
            detect_timeout: SimDuration::from_secs(5),
            backoff_initial: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(4),
            max_attempts: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GridlogConfig::default();
        assert!(c.costs.broker_append_base > SimDuration::ZERO);
        assert!(c.batching.linger > SimDuration::ZERO);
        assert!(c.batching.max_records >= 1);
        assert!(c.fetching.max_wait > c.batching.linger);
        assert!(c.partitions >= 1);
        assert!(c.segment_records >= 1);
        let p = ReconnectPolicy::default();
        assert!(p.detect_timeout > p.heartbeat_interval);
        assert!(p.backoff_max >= p.backoff_initial);
        assert!(c.group.session_timeout > p.detect_timeout);
    }
}
