//! gridlog — a partitioned-log (Kafka-style) middleware contender for
//! the grid-monitoring study, simulated on the same planes as narada
//! and R-GMA.
//!
//! The model: one [`LogBroker`] actor holds per-topic partitions of
//! append-only segments with dense monotonic offsets. Producers batch
//! records client-side (linger + max-batch, Kafka's `linger.ms`) and
//! the broker assigns partitions by key hash. Consumers organize into
//! groups: the broker range-assigns partitions across members, pushes
//! a new assignment epoch on every join/leave/expiry, serves long-poll
//! batch fetches, and persists committed offsets per group.
//!
//! Fault semantics mirror the narada CLIENT-vs-AUTO acknowledge axis:
//! the log and committed offsets survive a broker crash (disk), while
//! connections, group membership, and parked fetches do not. A
//! [`OffsetReset::Committed`] consumer resumes from its durable offset
//! with zero loss; an [`OffsetReset::Latest`] consumer rejoins at the
//! log end and loses the crash window.
//!
//! Everything is metered: CPU through [`simos::OsModel::execute_metered`]
//! (attributed to the `gridlog.*` [`simprof`] components), bytes through
//! [`simnet::NetworkFabric`], lifecycle through [`simtrace`] events, and
//! RTT through the shared [`telemetry::RttCollector`] probe protocol.

#![warn(missing_docs)]

pub mod broker;
pub mod client;
pub mod config;
pub mod log;
pub mod protocol;

pub use broker::{BrokerTimer, LogBroker, LogBrokerStats, StatsHandle};
pub use client::{ClientEvent, ClientTimer, GridlogClientSet};
pub use config::{
    Batching, BrokerMemory, CostModel, Fetching, GridlogConfig, GroupPolicy, OffsetReset,
    ReconnectPolicy,
};
pub use log::{partition_for, PartitionLog, Segment, StoredRecord, TopicLog};
pub use protocol::{
    fetch_response_bytes, offsets_bytes, produce_bytes, BrokerToClient, ClientToBroker,
    FetchedRecord, ProducerRecord,
};
