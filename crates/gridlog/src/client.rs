//! Client-side gridlog sessions: a [`GridlogClientSet`] manages many
//! logical connections — batching producers and consumer-group members —
//! inside one host actor, mirroring the narada client set so the driver
//! programs look identical across middlewares.
//!
//! Host-actor contract: forward [`simnet::Delivery`] payloads to
//! [`GridlogClientSet::handle_delivery`] and [`ClientTimer`] payloads to
//! [`GridlogClientSet::handle_timer`]; both return [`ClientEvent`]s for
//! the host to act on.

use crate::config::{GridlogConfig, OffsetReset, ReconnectPolicy};
use crate::protocol::{
    offsets_bytes, produce_bytes, BrokerToClient, ClientToBroker, ProducerRecord,
    CONTROL_FRAME_BYTES, RECORD_OVERHEAD_BYTES,
};
use simcore::{Context, SimDuration, SimTime};
use simnet::{ConnId, Delivery, Endpoint, NetworkFabric, Transport};
use simos::{NodeId, OsModel};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use telemetry::{ProbeId, RttCollector};
use wire::Message;

/// Timer payload the host actor must route back via `handle_timer`.
pub struct ClientTimer(pub u64);

/// Events surfaced to the host actor.
#[derive(Debug, PartialEq)]
pub enum ClientEvent {
    /// Connection established.
    Connected(ConnId),
    /// Connection refused by the broker (OOM).
    Refused(ConnId, String),
    /// The consumer received a (new) partition assignment.
    Assigned {
        /// Connection.
        conn: ConnId,
        /// Assignment epoch.
        epoch: u64,
        /// Partitions now owned.
        partitions: Vec<u32>,
    },
    /// A fetched record was handed to the listener.
    RecordArrived {
        /// Connection it arrived on.
        conn: ConnId,
        /// Partition it came from.
        partition: u32,
        /// Its offset.
        offset: u64,
        /// Telemetry probe of the originating produce.
        probe: ProbeId,
        /// When the listener callback completed.
        done_at: SimTime,
    },
    /// A produced record was abandoned (its connection died for good).
    ProduceAbandoned {
        /// Connection.
        conn: ConnId,
        /// Probe of the lost record.
        probe: ProbeId,
    },
    /// The broker stopped answering and a reconnect attempt began. The
    /// host must redirect its bookkeeping from `old` to `new`.
    Reconnecting {
        /// Connection id being abandoned.
        old: ConnId,
        /// Replacement connection (currently connecting).
        new: ConnId,
    },
    /// A reconnect attempt succeeded; the producer re-sent unacked
    /// batches, the consumer rejoined its group.
    Reconnected(ConnId),
    /// Every reconnect attempt failed; the connection is gone for good.
    ConnectionLost(ConnId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Connecting,
    Ready,
    Refused,
}

struct ProducerState {
    producer_id: u64,
    topic: String,
    /// Records accumulating toward the next batch flush.
    batch: Vec<ProducerRecord>,
    linger_armed: bool,
    next_batch_seq: u64,
    /// Flushed but unacknowledged batches, re-sent after a reconnect.
    pending: BTreeMap<u64, Vec<ProducerRecord>>,
    /// Records produced while reconnecting, flushed on reconnect.
    offline: Vec<ProducerRecord>,
}

struct ConsumerState {
    group: String,
    member: u64,
    topic: String,
    reset: OffsetReset,
    epoch: u64,
    /// Partitions currently owned.
    owned: Vec<u32>,
    /// partition → next offset to fetch.
    positions: BTreeMap<u32, u64>,
    /// Partitions with an outstanding long-poll fetch.
    in_flight: BTreeSet<u32>,
}

enum Role {
    Producer(ProducerState),
    Consumer(ConsumerState),
}

struct ConnState {
    reconnect: Option<ReconnectPolicy>,
    broker_ep: Endpoint,
    phase: ConnPhase,
    role: Role,
    /// Last instant the broker was heard from (reconnect detection).
    last_seen: SimTime,
    /// Reconnect attempts made so far (0 = never lost). Refunded on
    /// every successful connect: the cap bounds one outage.
    attempt: u32,
    /// True once this logical connection reached `Ready` at least once.
    ever_connected: bool,
}

enum TimerKind {
    /// Producer batch linger expired: flush.
    Linger {
        conn: ConnId,
    },
    /// Committed-mode consumer: flush offset commits.
    Commit {
        conn: ConnId,
    },
    /// Liveness heartbeat + silence check.
    Heartbeat {
        conn: ConnId,
    },
    ReconnectTry {
        conn: ConnId,
    },
    ReconnectDeadline {
        conn: ConnId,
        attempt: u32,
    },
}

/// A set of gridlog client connections owned by one host actor.
pub struct GridlogClientSet {
    cfg: GridlogConfig,
    node: NodeId,
    conns: HashMap<ConnId, ConnState>,
    timers: HashMap<u64, TimerKind>,
    next_timer: u64,
    /// Cross-member duplicate filter: partition → first offset not yet
    /// surfaced to the host. Partition handoffs between members of the
    /// same group re-fetch from the committed offset; this keeps each
    /// offset's record surfacing exactly once per host. (One group per
    /// set — the driver programs never need more.)
    delivered_to: BTreeMap<u32, u64>,
}

impl GridlogClientSet {
    /// New client set for a host actor on `node`.
    pub fn new(cfg: GridlogConfig, node: NodeId) -> Self {
        GridlogClientSet {
            cfg,
            node,
            conns: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
            delivered_to: BTreeMap::new(),
        }
    }

    fn my_ep(&self, ctx: &Context<'_>) -> Endpoint {
        Endpoint::new(self.node, ctx.self_id())
    }

    fn cpu(&self, ctx: &mut Context<'_>, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, simprof::Component::GridlogClient, effective);
            done
        })
    }

    fn serialize_cost(&self, bytes: usize) -> SimDuration {
        self.cfg.costs.client_serialize_base
            + SimDuration::from_micros(
                (bytes as u64 * self.cfg.costs.client_serialize_per_byte_ns).div_ceil(1000),
            )
    }

    fn deliver_cost(&self, bytes: usize) -> SimDuration {
        self.cfg.costs.client_deliver_base
            + SimDuration::from_micros(
                (bytes as u64 * self.cfg.costs.client_deliver_per_byte_ns).div_ceil(1000),
            )
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_>, delay: SimDuration, kind: TimerKind) -> u64 {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, kind);
        ctx.timer(delay, ClientTimer(token));
        token
    }

    fn open(&mut self, ctx: &mut Context<'_>, broker_ep: Endpoint) -> ConnId {
        let me = self.my_ep(ctx);
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            let conn = net.open(ctx.now(), Transport::Tcp, me, broker_ep);
            net.send(
                ctx,
                conn,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Connect),
            );
            conn
        })
    }

    fn insert_conn(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        broker_ep: Endpoint,
        role: Role,
        reconnect: Option<ReconnectPolicy>,
    ) {
        self.conns.insert(
            conn,
            ConnState {
                reconnect,
                broker_ep,
                phase: ConnPhase::Connecting,
                role,
                last_seen: ctx.now(),
                attempt: 0,
                ever_connected: false,
            },
        );
        // With recovery enabled the *initial* connect gets the same
        // deadline as a reconnect attempt: a Connect frame swallowed by
        // a crashed broker must not strand the client forever.
        if let Some(policy) = reconnect {
            self.arm_timer(
                ctx,
                policy.detect_timeout,
                TimerKind::ReconnectDeadline { conn, attempt: 0 },
            );
        }
    }

    /// Open a producer connection. `producer_id` is the stable
    /// idempotence identity (survives reconnects).
    pub fn connect_producer(
        &mut self,
        ctx: &mut Context<'_>,
        broker_ep: Endpoint,
        producer_id: u64,
        topic: impl Into<String>,
        reconnect: Option<ReconnectPolicy>,
    ) -> ConnId {
        let conn = self.open(ctx, broker_ep);
        self.insert_conn(
            ctx,
            conn,
            broker_ep,
            Role::Producer(ProducerState {
                producer_id,
                topic: topic.into(),
                batch: Vec::new(),
                linger_armed: false,
                next_batch_seq: 0,
                pending: BTreeMap::new(),
                offline: Vec::new(),
            }),
            reconnect,
        );
        conn
    }

    /// Open a consumer connection that joins `group` on `topic` once the
    /// connection is up.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_consumer(
        &mut self,
        ctx: &mut Context<'_>,
        broker_ep: Endpoint,
        group: impl Into<String>,
        member: u64,
        topic: impl Into<String>,
        reset: OffsetReset,
        reconnect: Option<ReconnectPolicy>,
    ) -> ConnId {
        let conn = self.open(ctx, broker_ep);
        self.insert_conn(
            ctx,
            conn,
            broker_ep,
            Role::Consumer(ConsumerState {
                group: group.into(),
                member,
                topic: topic.into(),
                reset,
                epoch: 0,
                owned: Vec::new(),
                positions: BTreeMap::new(),
                in_flight: BTreeSet::new(),
            }),
            reconnect,
        );
        conn
    }

    /// Produce one record. Instruments `before_sending` immediately (the
    /// linger wait is part of the produce round trip, exactly as Kafka's
    /// `send()` future resolves only on the broker ack) and returns the
    /// probe id; `after_sending` fires when the batch flush completes.
    pub fn produce(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        key: u32,
        mut message: Message,
    ) -> ProbeId {
        let now = ctx.now();
        let lane = ctx.self_id().index() as u32;
        let probe = ctx.service_mut::<RttCollector>().before_sending(lane, now);
        message.headers.trace = Some(simtrace::TraceId(probe.0));
        // Freshness stamp: out-of-band like the trace id, read back by
        // the consumer when the record arrives in a fetch response.
        message.headers.published_at = Some(now);
        simslo::with_slo(ctx, |slo, at| {
            slo.record_publish(probe, &message.headers.destination, at)
        });
        let actor = ctx.self_id().index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::PublishBegin,
            );
        });
        let state = self.conns.get_mut(&conn).expect("unknown connection");
        let reconnecting = state.phase == ConnPhase::Connecting && state.reconnect.is_some();
        let Role::Producer(prod) = &mut state.role else {
            panic!("produce on a consumer connection");
        };
        let rec = ProducerRecord {
            probe,
            key,
            message,
        };
        if reconnecting {
            // Broker presumed dead and a reconnect is in flight: buffer
            // the record; it is flushed (delayed, not dropped) once the
            // replacement connection comes up.
            prod.offline.push(rec);
            simfault::with_faults(ctx, |inj, _| inj.stats.delayed += 1);
            return probe;
        }
        assert_eq!(state.phase, ConnPhase::Ready, "produce before ConnectOk");
        prod.batch.push(rec);
        let occupancy = prod.batch.len() as u32;
        let full = prod.batch.len() >= self.cfg.batching.max_records;
        let arm = !full && !prod.linger_armed;
        if arm {
            prod.linger_armed = true;
        }
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::BatchEnqueue { occupancy },
            );
        });
        if full {
            self.flush_batch(ctx, conn);
        } else if arm {
            let linger = self.cfg.batching.linger;
            self.arm_timer(ctx, linger, TimerKind::Linger { conn });
        }
        probe
    }

    /// Flush the accumulated batch: one serialization charge, then
    /// `after_sending`/`PublishEnd` for every record at the flush
    /// instant, then the batch goes on the wire.
    fn flush_batch(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let Role::Producer(prod) = &mut state.role else {
            return;
        };
        if prod.batch.is_empty() {
            return;
        }
        prod.linger_armed = false;
        if state.phase != ConnPhase::Ready {
            // Went into reconnect mid-linger: everything buffered moves
            // to the offline queue.
            let n = prod.batch.len() as u64;
            prod.offline.append(&mut prod.batch);
            simfault::with_faults(ctx, |inj, _| inj.stats.delayed += n);
            return;
        }
        let records = std::mem::take(&mut prod.batch);
        let seq = prod.next_batch_seq;
        prod.next_batch_seq += 1;
        let producer_id = prod.producer_id;
        let topic = prod.topic.clone();
        let tuples = records.len() as u32;
        let bytes = produce_bytes(&records);
        let actor = ctx.self_id().index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(at, None, actor, simtrace::EventKind::BatchFlush { tuples });
            tr.count(simtrace::Counter::BatchFlushes, 1);
        });
        let ser_done = self.cpu(ctx, self.serialize_cost(bytes));
        for rec in &records {
            let probe = rec.probe;
            ctx.service_mut::<RttCollector>()
                .after_sending(probe, ser_done);
            simtrace::with_trace(ctx, |tr, _| {
                tr.record(
                    ser_done,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::PublishEnd,
                );
            });
        }
        let state = self.conns.get_mut(&conn).expect("still here");
        let Role::Producer(prod) = &mut state.role else {
            unreachable!("checked above");
        };
        prod.pending.insert(seq, records.clone());
        let me = self.my_ep(ctx);
        let msg = ClientToBroker::Produce {
            producer_id,
            batch_seq: seq,
            topic,
            records,
            retransmit: false,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(ctx, conn, me, bytes, Box::new(msg), ser_done);
        });
    }

    /// Issue a long-poll fetch for one owned partition.
    fn send_fetch(&mut self, ctx: &mut Context<'_>, conn: ConnId, partition: u32) {
        let me = self.my_ep(ctx);
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        if state.phase != ConnPhase::Ready {
            return;
        }
        let Role::Consumer(cons) = &mut state.role else {
            return;
        };
        if !cons.owned.contains(&partition) || cons.in_flight.contains(&partition) {
            return;
        }
        cons.in_flight.insert(partition);
        let msg = ClientToBroker::Fetch {
            group: cons.group.clone(),
            member: cons.member,
            epoch: cons.epoch,
            partition,
            offset: cons.positions.get(&partition).copied().unwrap_or(0),
        };
        let bytes = CONTROL_FRAME_BYTES + cons.group.len() + 20;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(ctx, conn, me, bytes, Box::new(msg));
        });
    }

    /// Handle a network delivery addressed to the host actor. Returns
    /// the events the host should react to.
    pub fn handle_delivery(
        &mut self,
        ctx: &mut Context<'_>,
        delivery: Delivery,
    ) -> Vec<ClientEvent> {
        let Delivery { conn, payload, .. } = delivery;
        let Ok(b2c) = payload.downcast::<BrokerToClient>() else {
            return Vec::new();
        };
        // Any broker frame counts as liveness for crash detection.
        if let Some(state) = self.conns.get_mut(&conn) {
            state.last_seen = ctx.now();
        }
        let mut events = Vec::new();
        match *b2c {
            BrokerToClient::ConnectOk => {
                let Some(state) = self.conns.get_mut(&conn) else {
                    return events;
                };
                state.phase = ConnPhase::Ready;
                let reconnect = state.reconnect;
                let was_reconnect = state.ever_connected && state.attempt > 0;
                state.attempt = 0;
                state.ever_connected = true;
                if was_reconnect {
                    events.push(ClientEvent::Reconnected(conn));
                    simfault::with_faults(ctx, |inj, _| inj.stats.reconnects += 1);
                } else {
                    events.push(ClientEvent::Connected(conn));
                }
                let is_committed_consumer = match &state.role {
                    Role::Consumer(c) => {
                        let join = ClientToBroker::JoinGroup {
                            group: c.group.clone(),
                            member: c.member,
                            topic: c.topic.clone(),
                            reset: c.reset,
                        };
                        let bytes = CONTROL_FRAME_BYTES + c.group.len() + c.topic.len() + 16;
                        let me = self.my_ep(ctx);
                        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                            net.send(ctx, conn, me, bytes, Box::new(join));
                        });
                        let state = self.conns.get(&conn).expect("still here");
                        match &state.role {
                            Role::Consumer(c) => c.reset == OffsetReset::Committed,
                            Role::Producer(_) => false,
                        }
                    }
                    Role::Producer(_) => {
                        if was_reconnect {
                            self.republish_pending(ctx, conn);
                            self.drain_offline(ctx, conn);
                        }
                        false
                    }
                };
                if is_committed_consumer {
                    let interval = self.cfg.group.commit_interval;
                    self.arm_timer(ctx, interval, TimerKind::Commit { conn });
                }
                if let Some(policy) = reconnect {
                    self.arm_timer(
                        ctx,
                        policy.heartbeat_interval,
                        TimerKind::Heartbeat { conn },
                    );
                }
            }
            BrokerToClient::ConnectRefused { reason } => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.phase = ConnPhase::Refused;
                    events.push(ClientEvent::Refused(conn, reason));
                }
            }
            BrokerToClient::ProduceAck { batch_seq } => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    if let Role::Producer(prod) = &mut state.role {
                        prod.pending.remove(&batch_seq);
                    }
                }
            }
            BrokerToClient::Assignment {
                group: _,
                epoch,
                partitions,
            } => {
                let Some(state) = self.conns.get_mut(&conn) else {
                    return events;
                };
                let Role::Consumer(cons) = &mut state.role else {
                    return events;
                };
                if epoch < cons.epoch {
                    return events; // out-of-order rebalance push
                }
                cons.epoch = epoch;
                cons.owned = partitions.iter().map(|&(p, _)| p).collect();
                for &(p, start) in &partitions {
                    match cons.reset {
                        OffsetReset::Committed => {
                            // Keep a live position if we have one (it is
                            // ≥ the committed offset); adopt the broker's
                            // start for newly acquired partitions.
                            let e = cons.positions.entry(p).or_insert(start);
                            *e = (*e).max(start);
                        }
                        OffsetReset::Latest => {
                            // A reset-to-latest member adopts the log end
                            // wholesale — the crash window is skipped.
                            cons.positions.insert(p, start);
                        }
                    }
                }
                cons.in_flight.clear();
                let owned = cons.owned.clone();
                events.push(ClientEvent::Assigned {
                    conn,
                    epoch,
                    partitions: owned.clone(),
                });
                for p in owned {
                    self.send_fetch(ctx, conn, p);
                }
            }
            BrokerToClient::Records {
                partition,
                epoch,
                records,
                end_offset: _,
            } => {
                let now = ctx.now();
                let Some(state) = self.conns.get_mut(&conn) else {
                    return events;
                };
                let Role::Consumer(cons) = &mut state.role else {
                    return events;
                };
                if epoch != cons.epoch || !cons.owned.contains(&partition) {
                    return events; // stale response from before a rebalance
                }
                cons.in_flight.remove(&partition);
                let mut pos = cons.positions.get(&partition).copied().unwrap_or(0);
                let actor = ctx.self_id().index() as u64;
                for rec in records {
                    pos = pos.max(rec.offset + 1);
                    let next = self.delivered_to.entry(partition).or_insert(0);
                    let fresh = rec.offset >= *next;
                    if fresh {
                        *next = rec.offset + 1;
                    }
                    let bytes = rec.message.wire_size() + RECORD_OVERHEAD_BYTES;
                    // Deserialization is paid for duplicates too; only
                    // fresh records reach the listener and the probes.
                    if fresh {
                        ctx.service_mut::<RttCollector>()
                            .before_receiving(rec.probe, now);
                    }
                    let done = self.cpu(ctx, self.deliver_cost(bytes));
                    if fresh {
                        ctx.service_mut::<RttCollector>()
                            .after_receiving(rec.probe, done);
                        let id = Some(simtrace::TraceId(rec.probe.0));
                        simtrace::with_trace(ctx, |tr, _| {
                            tr.record(now, id, actor, simtrace::EventKind::Available);
                            tr.record(done, id, actor, simtrace::EventKind::Delivered);
                        });
                        // Freshness plane: committed-offset replay after
                        // a crash redelivers records, but the `fresh`
                        // gate (and first-wins collector semantics)
                        // keeps one delivery per reading.
                        simslo::with_slo(ctx, |slo, _| {
                            slo.record_delivery(
                                rec.probe,
                                actor as u32,
                                done,
                                rec.message.headers.published_at,
                            );
                        });
                        events.push(ClientEvent::RecordArrived {
                            conn,
                            partition,
                            offset: rec.offset,
                            probe: rec.probe,
                            done_at: done,
                        });
                    }
                }
                if let Some(state) = self.conns.get_mut(&conn) {
                    if let Role::Consumer(cons) = &mut state.role {
                        cons.positions.insert(partition, pos);
                    }
                }
                // Long-poll loop: the next fetch goes out immediately;
                // an empty log parks it at the broker.
                self.send_fetch(ctx, conn, partition);
            }
            BrokerToClient::CommitOk { epoch: _ } => {}
            BrokerToClient::Pong => {}
        }
        events
    }

    /// Handle a [`ClientTimer`] delivered to the host actor.
    pub fn handle_timer(&mut self, ctx: &mut Context<'_>, timer: ClientTimer) -> Vec<ClientEvent> {
        let Some(kind) = self.timers.remove(&timer.0) else {
            return Vec::new(); // stale
        };
        match kind {
            TimerKind::Linger { conn } => {
                self.flush_batch(ctx, conn);
                Vec::new()
            }
            TimerKind::Commit { conn } => {
                let me = self.my_ep(ctx);
                let Some(state) = self.conns.get_mut(&conn) else {
                    return Vec::new(); // conn replaced or closed
                };
                if state.phase != ConnPhase::Ready {
                    return Vec::new();
                }
                let Role::Consumer(cons) = &mut state.role else {
                    return Vec::new();
                };
                let offsets: Vec<(u32, u64)> = cons
                    .owned
                    .iter()
                    .filter_map(|&p| cons.positions.get(&p).map(|&o| (p, o)))
                    .collect();
                if !offsets.is_empty() {
                    let msg = ClientToBroker::CommitOffsets {
                        group: cons.group.clone(),
                        member: cons.member,
                        epoch: cons.epoch,
                        offsets: offsets.clone(),
                    };
                    let bytes = offsets_bytes(offsets.len()) + cons.group.len();
                    ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                        net.send(ctx, conn, me, bytes, Box::new(msg));
                    });
                }
                let interval = self.cfg.group.commit_interval;
                self.arm_timer(ctx, interval, TimerKind::Commit { conn });
                Vec::new()
            }
            TimerKind::Heartbeat { conn } => {
                let Some(state) = self.conns.get(&conn) else {
                    return Vec::new(); // conn replaced or closed
                };
                let Some(policy) = state.reconnect else {
                    return Vec::new();
                };
                if state.phase != ConnPhase::Ready {
                    return Vec::new();
                }
                if ctx.now().saturating_since(state.last_seen) > policy.detect_timeout {
                    return self.begin_reconnect(ctx, conn);
                }
                let msg = match &state.role {
                    Role::Consumer(c) => ClientToBroker::Heartbeat {
                        group: c.group.clone(),
                        member: c.member,
                    },
                    Role::Producer(_) => ClientToBroker::Ping,
                };
                let me = self.my_ep(ctx);
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send(ctx, conn, me, CONTROL_FRAME_BYTES, Box::new(msg));
                });
                self.arm_timer(
                    ctx,
                    policy.heartbeat_interval,
                    TimerKind::Heartbeat { conn },
                );
                Vec::new()
            }
            TimerKind::ReconnectTry { conn } => self.begin_reconnect(ctx, conn),
            TimerKind::ReconnectDeadline { conn, attempt } => {
                let Some(state) = self.conns.get(&conn) else {
                    return Vec::new();
                };
                if state.phase != ConnPhase::Connecting || state.attempt != attempt {
                    return Vec::new(); // connected meanwhile or superseded
                }
                let policy = state.reconnect.expect("reconnecting conn");
                if attempt >= policy.max_attempts {
                    // Give up for good; everything unflushed is lost.
                    let me = self.my_ep(ctx);
                    ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                        net.send(
                            ctx,
                            conn,
                            me,
                            CONTROL_FRAME_BYTES,
                            Box::new(ClientToBroker::Disconnect),
                        );
                    });
                    let state = self.conns.remove(&conn).expect("checked above");
                    let mut events = vec![ClientEvent::ConnectionLost(conn)];
                    if let Role::Producer(prod) = state.role {
                        for records in prod.pending.values() {
                            for rec in records {
                                events.push(ClientEvent::ProduceAbandoned {
                                    conn,
                                    probe: rec.probe,
                                });
                            }
                        }
                        for rec in prod.offline.iter().chain(prod.batch.iter()) {
                            events.push(ClientEvent::ProduceAbandoned {
                                conn,
                                probe: rec.probe,
                            });
                        }
                    }
                    return events;
                }
                // Exponential backoff with equal jitter: de-synchronizes
                // the reconnect herd after a broker restart.
                let shift = (attempt.saturating_sub(1)).min(20);
                let base = policy
                    .backoff_initial
                    .saturating_mul(1u64 << shift)
                    .min(policy.backoff_max);
                let backoff = base / 2 + ctx.rng().duration_between(SimDuration::ZERO, base / 2);
                self.arm_timer(ctx, backoff, TimerKind::ReconnectTry { conn });
                Vec::new()
            }
        }
    }

    /// Abandon `old` and open a replacement connection to the same
    /// broker endpoint, carrying over the producer's unflushed/unacked
    /// records and the consumer's group identity and positions.
    fn begin_reconnect(&mut self, ctx: &mut Context<'_>, old: ConnId) -> Vec<ClientEvent> {
        let Some(mut state) = self.conns.remove(&old) else {
            return Vec::new();
        };
        let Some(policy) = state.reconnect else {
            self.conns.insert(old, state);
            return Vec::new();
        };
        state.attempt += 1;
        state.phase = ConnPhase::Connecting;
        match &mut state.role {
            Role::Producer(prod) => {
                // Unflushed batch records join the offline queue; the
                // linger timer for the old conn is now stale.
                let n = prod.batch.len() as u64;
                prod.offline.append(&mut prod.batch);
                prod.linger_armed = false;
                if n > 0 {
                    simfault::with_faults(ctx, |inj, _| inj.stats.delayed += n);
                }
            }
            Role::Consumer(cons) => {
                cons.in_flight.clear();
            }
        }
        // Best-effort goodbye on the abandoned connection: if the broker
        // is actually up (slow, not dead), this frees its service thread.
        let me = self.my_ep(ctx);
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(
                ctx,
                old,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Disconnect),
            );
        });
        simfault::with_faults(ctx, |inj, _| inj.stats.reconnect_attempts += 1);
        telemetry::with_metrics(ctx, |m, _| m.add_counter("gridlog.reconnect_attempts", 1));
        let broker_ep = state.broker_ep;
        let new = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            let c = net.open(ctx.now(), Transport::Tcp, me, broker_ep);
            net.send(
                ctx,
                c,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Connect),
            );
            c
        });
        let attempt = state.attempt;
        self.conns.insert(new, state);
        self.arm_timer(
            ctx,
            policy.detect_timeout,
            TimerKind::ReconnectDeadline { conn: new, attempt },
        );
        vec![ClientEvent::Reconnecting { old, new }]
    }

    /// Re-send every flushed-but-unacked batch on a reconnected
    /// connection with its original sequence; the broker's durable
    /// producer sequences filter the ones that were already appended.
    fn republish_pending(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let me = self.my_ep(ctx);
        let Some(state) = self.conns.get(&conn) else {
            return;
        };
        let Role::Producer(prod) = &state.role else {
            return;
        };
        let producer_id = prod.producer_id;
        let topic = prod.topic.clone();
        let resend: Vec<(u64, Vec<ProducerRecord>)> = prod
            .pending
            .iter()
            .map(|(&seq, recs)| (seq, recs.clone()))
            .collect();
        let n: u64 = resend.iter().map(|(_, r)| r.len() as u64).sum();
        for (seq, records) in resend {
            let bytes = produce_bytes(&records);
            // Retransmission re-serializes from the buffered form:
            // cheaper than first serialization.
            let done = self.cpu(ctx, self.cfg.costs.client_serialize_base);
            let msg = ClientToBroker::Produce {
                producer_id,
                batch_seq: seq,
                topic: topic.clone(),
                records,
                retransmit: true,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, me, bytes, Box::new(msg), done);
            });
        }
        if n > 0 {
            simfault::with_faults(ctx, |inj, _| inj.stats.republished += n);
        }
    }

    /// Flush the offline record buffer of a reconnected producer as an
    /// immediate batch (no linger — these records are already late).
    fn drain_offline(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let Role::Producer(prod) = &mut state.role else {
            return;
        };
        if prod.offline.is_empty() {
            return;
        }
        let mut offline = std::mem::take(&mut prod.offline);
        prod.batch.append(&mut offline);
        self.flush_batch(ctx, conn);
    }

    /// Close a connection: the broker frees its service thread; a
    /// consumer leaves its group first so the partitions rebalance away.
    pub fn disconnect(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        let me = self.my_ep(ctx);
        if let Role::Consumer(cons) = &state.role {
            if state.phase == ConnPhase::Ready {
                let leave = ClientToBroker::LeaveGroup {
                    group: cons.group.clone(),
                    member: cons.member,
                };
                let bytes = CONTROL_FRAME_BYTES + cons.group.len();
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send(ctx, conn, me, bytes, Box::new(leave));
                });
            }
        }
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(
                ctx,
                conn,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Disconnect),
            );
        });
    }

    /// Phase of a connection, for the host's bookkeeping.
    pub fn is_ready(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .is_some_and(|c| c.phase == ConnPhase::Ready)
    }

    /// Was the connection refused?
    pub fn is_refused(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .is_some_and(|c| c.phase == ConnPhase::Refused)
    }

    /// Number of connections in the set.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if no connections were opened.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}
