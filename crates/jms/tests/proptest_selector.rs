//! Property tests for the selector language.

use jms::selector::{eval, lex, parse};
use proptest::prelude::*;
use std::collections::BTreeMap;
use wire::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        proptest::num::f64::NORMAL.prop_map(Value::Double),
        "[a-z%_]{0,12}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Generate syntactically valid selectors by construction.
fn arb_selector() -> impl Strategy<Value = String> {
    let ident = "[a-c]";
    let atom = prop_oneof![
        (ident, -100i64..100).prop_map(|(id, n)| format!("{id} < {n}")),
        (ident, -100i64..100).prop_map(|(id, n)| format!("{id} = {n}")),
        (ident, "[a-z]{0,4}").prop_map(|(id, s)| format!("{id} = '{s}'")),
        (ident, "[a-z%_]{0,6}").prop_map(|(id, p)| format!("{id} LIKE '{p}'")),
        (ident, -50i64..0, 0i64..50).prop_map(|(id, lo, hi)| format!("{id} BETWEEN {lo} AND {hi}")),
        ident.prop_map(|id| format!("{id} IS NULL")),
        (ident, "[a-z]{1,3}", "[a-z]{1,3}")
            .prop_map(|(id, a, b)| format!("{id} IN ('{a}', '{b}')")),
    ];
    let leaf = atom.boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) AND ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) OR ({b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

proptest! {
    #[test]
    fn lexer_never_panics(s in "[ -~]{0,128}") {
        let _ = lex(&s);
    }

    #[test]
    fn parser_never_panics(s in "[ -~]{0,128}") {
        let _ = parse(&s);
    }

    #[test]
    fn constructed_selectors_parse(s in arb_selector()) {
        parse(&s).unwrap_or_else(|e| panic!("{s:?} failed: {e}"));
    }

    #[test]
    fn display_reparses_to_same_ast(s in arb_selector()) {
        let ast = parse(&s).unwrap();
        let printed = format!("{ast}");
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed form {printed:?} failed: {e}"));
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn eval_never_panics_and_is_deterministic(
        s in arb_selector(),
        props in proptest::collection::btree_map("[a-c]", arb_value(), 0..4),
    ) {
        let ast = parse(&s).unwrap();
        let props: BTreeMap<String, Value> = props;
        let r1 = eval(&ast, &props);
        let r2 = eval(&ast, &props);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn not_inverts_definite_results(
        s in arb_selector(),
        props in proptest::collection::btree_map("[a-c]", arb_value(), 0..4),
    ) {
        let ast = parse(&s).unwrap();
        let negated = parse(&format!("NOT ({s})")).unwrap();
        let props: BTreeMap<String, Value> = props;
        match (eval(&ast, &props), eval(&negated, &props)) {
            (Some(a), Some(b)) => prop_assert_eq!(a, !b),
            (None, None) => {}
            (a, b) => prop_assert!(false, "NOT broke three-valued logic: {:?} vs {:?}", a, b),
        }
    }
}
