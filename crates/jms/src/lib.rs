#![warn(missing_docs)]
//! # jms — Java Message Service API layer
//!
//! The vendor-neutral messaging abstractions the paper's Narada tests are
//! written against:
//!
//! * [`selector`] — the complete JMS message-selector language (SQL-92
//!   conditional subset): lexer, parser, AST, three-valued evaluator with
//!   `LIKE`/`BETWEEN`/`IN`/`IS NULL`.
//! * [`Selector`] — compiled selectors with a per-evaluation CPU cost
//!   model charged to broker nodes.
//! * [`AckMode`], [`Destination`], [`SubscriptionDesc`] — the JMS settings
//!   the study varies (AUTO vs CLIENT acknowledge, topics, non-durable
//!   subscriptions).

pub mod api;
pub mod selector;

pub use api::{AckMode, Destination, Selector, SubscriptionDesc};
pub use selector::{Expr, ParseError};
