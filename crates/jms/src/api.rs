//! JMS API-level types shared by brokers and clients: destinations,
//! acknowledgement modes, compiled selectors, and subscription
//! descriptors.

use crate::selector::{self, Expr, ParseError};
use simcore::SimDuration;
use wire::Message;

/// JMS acknowledgement modes exercised by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// Session acknowledges each message automatically as it is delivered
    /// (the paper's default).
    #[default]
    Auto,
    /// Application acknowledges explicitly; acks are batched (the paper's
    /// "UDP CLI" test used CLIENT_ACKNOWLEDGE).
    Client,
    /// Lazy acknowledgement permitting duplicates.
    DupsOk,
}

/// A JMS destination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Pub/sub topic.
    Topic(String),
    /// Point-to-point queue.
    Queue(String),
}

impl Destination {
    /// Destination name.
    pub fn name(&self) -> &str {
        match self {
            Destination::Topic(s) | Destination::Queue(s) => s,
        }
    }

    /// True for topics.
    pub fn is_topic(&self) -> bool {
        matches!(self, Destination::Topic(_))
    }
}

impl std::fmt::Display for Destination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Destination::Topic(s) => write!(f, "topic:{s}"),
            Destination::Queue(s) => write!(f, "queue:{s}"),
        }
    }
}

/// A compiled message selector: source text, AST, and a CPU cost model
/// for one evaluation (charged to the broker node per candidate message).
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    text: String,
    expr: Expr,
    nodes: usize,
    /// Compile-time tautology flag: empty/whitespace selectors match
    /// everything, and they dominate the broker's matching hot loop (the
    /// fleet's default subscription is `match_all`), so `matches` skips
    /// the AST walk for them.
    matches_all: bool,
}

impl Selector {
    /// Compile a selector. Empty/whitespace text matches everything.
    pub fn compile(text: &str) -> Result<Selector, ParseError> {
        let expr = selector::parse(text)?;
        let nodes = expr.node_count();
        Ok(Selector {
            text: text.to_owned(),
            expr,
            nodes,
            matches_all: text.trim().is_empty(),
        })
    }

    /// The match-everything selector.
    pub fn match_all() -> Selector {
        Selector::compile("").expect("empty selector compiles")
    }

    /// Source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Compiled AST.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Does `msg` match? (UNKNOWN rejects, per JMS.)
    #[inline]
    pub fn matches(&self, msg: &Message) -> bool {
        if self.matches_all {
            return true;
        }
        selector::matches(&self.expr, msg)
    }

    /// CPU cost of one evaluation on the reference node (Pentium III):
    /// a small fixed dispatch cost plus a per-AST-node term.
    pub fn eval_cost(&self) -> SimDuration {
        SimDuration::from_micros(2 + 2 * self.nodes as u64)
    }
}

/// A topic subscription as registered with a broker.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionDesc {
    /// Destination subscribed to.
    pub destination: Destination,
    /// Message filter.
    pub selector: Selector,
    /// Durable subscriptions survive disconnect (paper: non-durable).
    pub durable: bool,
    /// Suppress messages published on the same connection.
    pub no_local: bool,
}

impl SubscriptionDesc {
    /// Non-durable subscription with the given selector — the study's
    /// configuration.
    pub fn new(destination: Destination, selector: Selector) -> Self {
        SubscriptionDesc {
            destination,
            selector,
            durable: false,
            no_local: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use wire::{Headers, MessageId};

    #[test]
    fn destination_accessors() {
        let t = Destination::Topic("power".into());
        assert!(t.is_topic());
        assert_eq!(t.name(), "power");
        assert_eq!(format!("{t}"), "topic:power");
        let q = Destination::Queue("jobs".into());
        assert!(!q.is_topic());
        assert_eq!(format!("{q}"), "queue:jobs");
    }

    #[test]
    fn selector_compile_and_match() {
        let s = Selector::compile("id < 10000").unwrap();
        let m = Message::text(Headers::new(MessageId(1), "power", SimTime::ZERO), "x")
            .with_property("id", 5i32);
        assert!(s.matches(&m));
        assert_eq!(s.text(), "id < 10000");
        assert!(s.eval_cost() > SimDuration::ZERO);
    }

    #[test]
    fn match_all_matches_propertyless_messages() {
        let s = Selector::match_all();
        let m = Message::text(Headers::new(MessageId(1), "t", SimTime::ZERO), "x");
        assert!(s.matches(&m));
    }

    #[test]
    fn bad_selector_is_error() {
        assert!(Selector::compile("id <").is_err());
    }

    #[test]
    fn eval_cost_scales_with_complexity() {
        let simple = Selector::compile("a = 1").unwrap();
        let complex =
            Selector::compile("a = 1 AND b = 2 AND c LIKE 'x%' AND d BETWEEN 1 AND 9").unwrap();
        assert!(complex.eval_cost() > simple.eval_cost());
    }

    #[test]
    fn subscription_defaults() {
        let sub = SubscriptionDesc::new(Destination::Topic("power".into()), Selector::match_all());
        assert!(!sub.durable);
        assert!(!sub.no_local);
    }
}
