//! AST for JMS selector expressions.

use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// A selector expression. Boolean-valued nodes and value-valued nodes
/// share the enum; the evaluator enforces kinds (JMS selectors are
/// dynamically typed with UNKNOWN on mismatch).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Property reference.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `a AND b`
    And(Box<Expr>, Box<Expr>),
    /// `a OR b`
    Or(Box<Expr>, Box<Expr>),
    /// `NOT a`
    Not(Box<Expr>),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `x BETWEEN lo AND hi` (negated: `NOT BETWEEN`).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `x IN ('a', 'b', …)` (negated: `NOT IN`).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate string values.
        list: Vec<String>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `x LIKE 'pat' [ESCAPE 'c']` (negated: `NOT LIKE`).
    Like {
        /// Tested expression (must be string-valued).
        expr: Box<Expr>,
        /// Pattern with `%` / `_` wildcards.
        pattern: String,
        /// Optional escape character.
        escape: Option<char>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `x IS NULL` (negated: `IS NOT NULL`).
    IsNull {
        /// Tested expression (an identifier, per spec).
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Number of nodes, for cost accounting and complexity limits.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Ident(_) | Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) => 0,
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.node_count() + b.node_count()
            }
            Expr::Not(a) | Expr::Neg(a) => a.node_count(),
            Expr::Between { expr, lo, hi, .. } => {
                expr.node_count() + lo.node_count() + hi.node_count()
            }
            Expr::InList { expr, list, .. } => expr.node_count() + list.len(),
            Expr::Like { expr, .. } => expr.node_count(),
            Expr::IsNull { expr, .. } => expr.node_count(),
        }
    }

    /// Property names referenced by this expression.
    pub fn referenced_properties(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Ident(name) => out.push(name),
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) => {}
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Not(a) | Expr::Neg(a) => a.collect_idents(out),
            Expr::Between { expr, lo, hi, .. } => {
                expr.collect_idents(out);
                lo.collect_idents(out);
                hi.collect_idents(out);
            }
            Expr::InList { expr, .. } | Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.collect_idents(out)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ident(s) => write!(f, "{s}"),
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Float(v) => write!(f, "{v:?}"),
            Expr::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {lo} AND {hi})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, s) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{}'", s.replace('\'', "''"))?;
                }
                write!(f, "))")
            }
            Expr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )?;
                if let Some(c) = escape {
                    write!(f, " ESCAPE '{c}'")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_and_idents() {
        let e = Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Lt,
                Box::new(Expr::Ident("id".into())),
                Box::new(Expr::Int(10)),
            )),
            Box::new(Expr::IsNull {
                expr: Box::new(Expr::Ident("region".into())),
                negated: true,
            }),
        );
        assert_eq!(e.node_count(), 6);
        assert_eq!(e.referenced_properties(), vec!["id", "region"]);
    }

    #[test]
    fn display_roundtrippable_shapes() {
        let e = Expr::Between {
            expr: Box::new(Expr::Ident("x".into())),
            lo: Box::new(Expr::Int(1)),
            hi: Box::new(Expr::Int(5)),
            negated: false,
        };
        assert_eq!(format!("{e}"), "(x BETWEEN 1 AND 5)");
    }
}
