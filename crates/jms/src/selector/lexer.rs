//! Lexer for the JMS message-selector language (SQL-92 conditional
//! expression subset, per JMS 1.1 §3.8.1).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Property identifier (case-sensitive, Java identifier rules).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// `TRUE` / `FALSE` (case-insensitive keywords).
    Bool(bool),
    // Keywords (case-insensitive).
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `BETWEEN`
    Between,
    /// `IN`
    In,
    /// `LIKE`
    Like,
    /// `ESCAPE`
    Escape,
    /// `IS`
    Is,
    /// `NULL`
    Null,
    // Operators and punctuation.
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Token::And => write!(f, "AND"),
            Token::Or => write!(f, "OR"),
            Token::Not => write!(f, "NOT"),
            Token::Between => write!(f, "BETWEEN"),
            Token::In => write!(f, "IN"),
            Token::Like => write!(f, "LIKE"),
            Token::Escape => write!(f, "ESCAPE"),
            Token::Is => write!(f, "IS"),
            Token::Null => write!(f, "NULL"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
        }
    }
}

/// Lexical error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a selector expression.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            '0'..='9' | '.' => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let (tok, next) = lex_word(input, i);
                out.push(tok);
                i = next;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            // '' is an escaped quote.
            if bytes.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Consume a full UTF-8 scalar.
            let ch = input[i..].chars().next().expect("valid utf-8");
            s.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(LexError {
        message: "unterminated string literal".into(),
        at: start,
    })
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                i += 1;
            }
            b'e' | b'E' if !saw_exp && i > start => {
                saw_exp = true;
                i += 1;
                if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if text == "." {
        return Err(LexError {
            message: "bare '.' is not a number".into(),
            at: start,
        });
    }
    if saw_dot || saw_exp {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), i))
            .map_err(|e| LexError {
                message: format!("bad float literal {text:?}: {e}"),
                at: start,
            })
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|e| LexError {
                message: format!("bad integer literal {text:?}: {e}"),
                at: start,
            })
    }
}

fn lex_word(input: &str, start: usize) -> (Token, usize) {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len()
        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
    {
        i += 1;
    }
    let word = &input[start..i];
    let tok = match word.to_ascii_uppercase().as_str() {
        "AND" => Token::And,
        "OR" => Token::Or,
        "NOT" => Token::Not,
        "BETWEEN" => Token::Between,
        "IN" => Token::In,
        "LIKE" => Token::Like,
        "ESCAPE" => Token::Escape,
        "IS" => Token::Is,
        "NULL" => Token::Null,
        "TRUE" => Token::Bool(true),
        "FALSE" => Token::Bool(false),
        _ => Token::Ident(word.to_owned()),
    };
    (tok, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_comparison() {
        assert_eq!(
            lex("id<10000").unwrap(),
            vec![Token::Ident("id".into()), Token::Lt, Token::Int(10000)]
        );
    }

    #[test]
    fn keywords_case_insensitive_idents_not() {
        assert_eq!(
            lex("foo And BAR or TRUE").unwrap(),
            vec![
                Token::Ident("foo".into()),
                Token::And,
                Token::Ident("BAR".into()),
                Token::Or,
                Token::Bool(true),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            lex("<> <= >= < > = + - * / ( ) ,").unwrap(),
            vec![
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::LParen,
                Token::RParen,
                Token::Comma,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("42 3.75 1e3 2.5E-2 .5").unwrap(),
            vec![
                Token::Int(42),
                Token::Float(3.75),
                Token::Float(1000.0),
                Token::Float(0.025),
                Token::Float(0.5),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            lex("'hello' 'it''s' ''").unwrap(),
            vec![
                Token::Str("hello".into()),
                Token::Str("it's".into()),
                Token::Str(String::new()),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.at, 0);
    }

    #[test]
    fn bad_char_errors() {
        let err = lex("a ? b").unwrap_err();
        assert_eq!(err.at, 2);
    }

    #[test]
    fn paper_selector() {
        // The selector the paper used: "id<10000".
        assert!(lex("id<10000").is_ok());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(lex("'héllo'").unwrap(), vec![Token::Str("héllo".into())]);
    }

    #[test]
    fn bare_dot_is_error() {
        assert!(lex(". ").is_err());
    }
}
