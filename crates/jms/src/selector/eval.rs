//! Three-valued evaluation of selector expressions over message
//! properties (JMS 1.1 §3.8.1.2 semantics: missing properties are NULL,
//! type mismatches yield UNKNOWN, and a message matches only if the whole
//! expression evaluates to exactly TRUE).

use super::ast::{ArithOp, CmpOp, Expr};
use wire::{Message, Value};

/// Anything that can supply property values.
pub trait PropertySource {
    /// Look up a property by (case-sensitive) name.
    fn property(&self, name: &str) -> Option<&Value>;
}

impl PropertySource for Message {
    fn property(&self, name: &str) -> Option<&Value> {
        Message::property(self, name)
    }
}

impl PropertySource for std::collections::BTreeMap<String, Value> {
    fn property(&self, name: &str) -> Option<&Value> {
        self.get(name)
    }
}

/// Intermediate evaluation value.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Ev {
    fn from_value(v: &Value) -> Ev {
        match v {
            Value::Int(x) => Ev::Num(f64::from(*x)),
            Value::Long(x) => Ev::Num(*x as f64),
            Value::Float(x) => Ev::Num(f64::from(*x)),
            Value::Double(x) => Ev::Num(*x),
            Value::Str(s) => Ev::Str(s.clone()),
            Value::Char { content, .. } => Ev::Str(content.clone()),
            Value::Bool(b) => Ev::Bool(*b),
        }
    }
}

/// Evaluate a selector against a property source. `Some(true)` = match,
/// `Some(false)` = no match, `None` = UNKNOWN (treated as no match by
/// [`matches()`](fn@matches)).
pub fn eval<S: PropertySource>(expr: &Expr, src: &S) -> Option<bool> {
    match eval_ev(expr, src) {
        Ev::Bool(b) => Some(b),
        Ev::Null => None,
        // Numeric/string-valued whole selector: not a boolean — UNKNOWN.
        _ => None,
    }
}

/// True iff the selector definitely matches (UNKNOWN and FALSE both
/// reject, per JMS).
pub fn matches<S: PropertySource>(expr: &Expr, src: &S) -> bool {
    eval(expr, src) == Some(true)
}

fn eval_ev<S: PropertySource>(expr: &Expr, src: &S) -> Ev {
    match expr {
        Expr::Ident(name) => src.property(name).map_or(Ev::Null, Ev::from_value),
        Expr::Int(v) => Ev::Num(*v as f64),
        Expr::Float(v) => Ev::Num(*v),
        Expr::Str(s) => Ev::Str(s.clone()),
        Expr::Bool(b) => Ev::Bool(*b),
        Expr::And(a, b) => {
            // Three-valued AND with short-circuit on FALSE.
            match to_bool3(eval_ev(a, src)) {
                Some(false) => Ev::Bool(false),
                la => match (la, to_bool3(eval_ev(b, src))) {
                    (_, Some(false)) => Ev::Bool(false),
                    (Some(true), Some(true)) => Ev::Bool(true),
                    _ => Ev::Null,
                },
            }
        }
        Expr::Or(a, b) => match to_bool3(eval_ev(a, src)) {
            Some(true) => Ev::Bool(true),
            la => match (la, to_bool3(eval_ev(b, src))) {
                (_, Some(true)) => Ev::Bool(true),
                (Some(false), Some(false)) => Ev::Bool(false),
                _ => Ev::Null,
            },
        },
        Expr::Not(a) => match to_bool3(eval_ev(a, src)) {
            Some(b) => Ev::Bool(!b),
            None => Ev::Null,
        },
        Expr::Cmp(op, a, b) => {
            let la = eval_ev(a, src);
            let lb = eval_ev(b, src);
            match cmp3(*op, &la, &lb) {
                Some(b) => Ev::Bool(b),
                None => Ev::Null,
            }
        }
        Expr::Arith(op, a, b) => {
            let (Ev::Num(x), Ev::Num(y)) = (eval_ev(a, src), eval_ev(b, src)) else {
                return Ev::Null;
            };
            Ev::Num(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            })
        }
        Expr::Neg(a) => match eval_ev(a, src) {
            Ev::Num(x) => Ev::Num(-x),
            _ => Ev::Null,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval_ev(expr, src);
            let l = eval_ev(lo, src);
            let h = eval_ev(hi, src);
            let (Ev::Num(v), Ev::Num(l), Ev::Num(h)) = (v, l, h) else {
                return Ev::Null;
            };
            let inside = v >= l && v <= h;
            Ev::Bool(inside != *negated)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => match eval_ev(expr, src) {
            Ev::Str(s) => {
                let found = list.iter().any(|x| x == &s);
                Ev::Bool(found != *negated)
            }
            _ => Ev::Null,
        },
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => match eval_ev(expr, src) {
            Ev::Str(s) => Ev::Bool(like_match(&s, pattern, *escape) != *negated),
            _ => Ev::Null,
        },
        Expr::IsNull { expr, negated } => {
            let is_null = matches!(eval_ev(expr, src), Ev::Null);
            Ev::Bool(is_null != *negated)
        }
    }
}

fn to_bool3(e: Ev) -> Option<bool> {
    match e {
        Ev::Bool(b) => Some(b),
        _ => None,
    }
}

fn cmp3(op: CmpOp, a: &Ev, b: &Ev) -> Option<bool> {
    use std::cmp::Ordering;
    let ord = match (a, b) {
        (Ev::Num(x), Ev::Num(y)) => x.partial_cmp(y)?,
        (Ev::Str(x), Ev::Str(y)) => {
            // Strings support only = and <> in JMS.
            return match op {
                CmpOp::Eq => Some(x == y),
                CmpOp::Ne => Some(x != y),
                _ => None,
            };
        }
        (Ev::Bool(x), Ev::Bool(y)) => {
            return match op {
                CmpOp::Eq => Some(x == y),
                CmpOp::Ne => Some(x != y),
                _ => None,
            };
        }
        _ => return None,
    };
    Some(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

/// SQL LIKE matcher: `%` = any run (including empty), `_` = exactly one
/// character, with an optional escape character that makes the next
/// pattern character literal.
pub fn like_match(s: &str, pattern: &str, escape: Option<char>) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<PatTok> = parse_pattern(pattern, escape);
    // Iterative two-pointer with backtracking on the last '%', O(n·m) worst
    // case, no recursion.
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, string idx)
    while si < s.len() {
        match p.get(pi) {
            Some(PatTok::Any) => {
                star = Some((pi + 1, si));
                pi += 1;
            }
            Some(PatTok::One) => {
                si += 1;
                pi += 1;
            }
            Some(PatTok::Lit(c)) if *c == s[si] => {
                si += 1;
                pi += 1;
            }
            _ => {
                // Mismatch: backtrack to the last %.
                match star {
                    Some((p_after, s_at)) => {
                        pi = p_after;
                        si = s_at + 1;
                        star = Some((p_after, s_at + 1));
                    }
                    None => return false,
                }
            }
        }
    }
    // Remaining pattern must be all %.
    p[pi..].iter().all(|t| matches!(t, PatTok::Any))
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PatTok {
    Lit(char),
    One,
    Any,
}

fn parse_pattern(pattern: &str, escape: Option<char>) -> Vec<PatTok> {
    let mut out = Vec::new();
    let mut escaped = false;
    for c in pattern.chars() {
        if escaped {
            out.push(PatTok::Lit(c));
            escaped = false;
        } else if Some(c) == escape {
            escaped = true;
        } else if c == '%' {
            out.push(PatTok::Any);
        } else if c == '_' {
            out.push(PatTok::One);
        } else {
            out.push(PatTok::Lit(c));
        }
    }
    // Trailing bare escape char: treat as literal (lenient).
    if escaped {
        if let Some(e) = escape {
            out.push(PatTok::Lit(e));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;
    use std::collections::BTreeMap;

    fn props(entries: &[(&str, Value)]) -> BTreeMap<String, Value> {
        entries
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    fn check(selector: &str, entries: &[(&str, Value)]) -> Option<bool> {
        let e = parse(selector).unwrap();
        eval(&e, &props(entries))
    }

    #[test]
    fn paper_selector_behaviour() {
        // "id<10000" — matches every generator in the study (ids < 10000).
        assert_eq!(check("id<10000", &[("id", Value::Int(42))]), Some(true));
        assert_eq!(check("id<10000", &[("id", Value::Int(10000))]), Some(false));
        // Missing property → UNKNOWN.
        assert_eq!(check("id<10000", &[]), None);
    }

    #[test]
    fn numeric_cross_type() {
        assert_eq!(check("x = 2.5", &[("x", Value::Float(2.5))]), Some(true));
        assert_eq!(check("x > 1", &[("x", Value::Long(2))]), Some(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            check("power / 2 + 10 >= 60", &[("power", Value::Int(100))]),
            Some(true)
        );
        assert_eq!(check("-x = 0 - 5", &[("x", Value::Int(5))]), Some(true));
    }

    #[test]
    fn and_or_three_valued() {
        // FALSE AND UNKNOWN = FALSE.
        assert_eq!(
            check("x = 1 AND missing = 2", &[("x", Value::Int(0))]),
            Some(false)
        );
        // TRUE AND UNKNOWN = UNKNOWN.
        assert_eq!(
            check("x = 1 AND missing = 2", &[("x", Value::Int(1))]),
            None
        );
        // TRUE OR UNKNOWN = TRUE.
        assert_eq!(
            check("x = 1 OR missing = 2", &[("x", Value::Int(1))]),
            Some(true)
        );
        // FALSE OR UNKNOWN = UNKNOWN.
        assert_eq!(check("x = 1 OR missing = 2", &[("x", Value::Int(0))]), None);
        // NOT UNKNOWN = UNKNOWN.
        assert_eq!(check("NOT missing = 2", &[]), None);
    }

    #[test]
    fn string_comparisons_limited() {
        assert_eq!(
            check("s = 'abc'", &[("s", Value::Str("abc".into()))]),
            Some(true)
        );
        assert_eq!(
            check("s <> 'abc'", &[("s", Value::Str("x".into()))]),
            Some(true)
        );
        // Ordering comparisons on strings are UNKNOWN in JMS.
        assert_eq!(check("s < 'b'", &[("s", Value::Str("a".into()))]), None);
        // Mixed string/number is UNKNOWN.
        assert_eq!(check("s = 5", &[("s", Value::Str("5".into()))]), None);
    }

    #[test]
    fn between_semantics() {
        let e = &[("x", Value::Int(5))];
        assert_eq!(check("x BETWEEN 1 AND 5", e), Some(true));
        assert_eq!(check("x BETWEEN 6 AND 9", e), Some(false));
        assert_eq!(check("x NOT BETWEEN 6 AND 9", e), Some(true));
        assert_eq!(check("missing BETWEEN 1 AND 2", &[]), None);
    }

    #[test]
    fn in_list_semantics() {
        let e = &[("r", Value::Str("uk".into()))];
        assert_eq!(check("r IN ('uk','fr')", e), Some(true));
        assert_eq!(check("r NOT IN ('uk','fr')", e), Some(false));
        assert_eq!(check("r IN ('de')", e), Some(false));
        assert_eq!(check("missing IN ('x')", &[]), None);
        // Numeric lhs with string list → UNKNOWN.
        assert_eq!(check("n IN ('1')", &[("n", Value::Int(1))]), None);
    }

    #[test]
    fn like_semantics() {
        let e = &[("name", Value::Str("gen_042".into()))];
        assert_eq!(check("name LIKE 'gen%'", e), Some(true));
        assert_eq!(check("name LIKE 'gen____'", e), Some(true));
        assert_eq!(check("name LIKE 'gen___'", e), Some(false));
        assert_eq!(check("name NOT LIKE 'x%'", e), Some(true));
        // Escaped underscore is literal.
        assert_eq!(check("name LIKE 'gen!_042' ESCAPE '!'", e), Some(true));
        assert_eq!(
            check(
                "name LIKE 'gen!_%' ESCAPE '!'",
                &[("name", Value::Str("genX042".into()))]
            ),
            Some(false)
        );
    }

    #[test]
    fn is_null_semantics() {
        assert_eq!(check("x IS NULL", &[]), Some(true));
        assert_eq!(check("x IS NULL", &[("x", Value::Int(1))]), Some(false));
        assert_eq!(check("x IS NOT NULL", &[("x", Value::Int(1))]), Some(true));
    }

    #[test]
    fn boolean_properties() {
        assert_eq!(check("on = TRUE", &[("on", Value::Bool(true))]), Some(true));
        assert_eq!(
            check("on <> FALSE", &[("on", Value::Bool(true))]),
            Some(true)
        );
        assert_eq!(check("on > FALSE", &[("on", Value::Bool(true))]), None);
    }

    #[test]
    fn char_values_behave_as_strings() {
        assert_eq!(
            check(
                "site = 'hydra'",
                &[("site", Value::fixed_char("hydra", 20))]
            ),
            Some(true)
        );
    }

    #[test]
    fn matches_treats_unknown_as_reject() {
        let e = parse("missing = 1").unwrap();
        assert!(!matches(&e, &props(&[])));
        let e = parse("x = 1").unwrap();
        assert!(matches(&e, &props(&[("x", Value::Int(1))])));
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", "", None));
        assert!(like_match("", "%", None));
        assert!(!like_match("", "_", None));
        assert!(like_match("abc", "%", None));
        assert!(like_match("abc", "a%c", None));
        assert!(like_match("ac", "a%c", None));
        assert!(!like_match("ab", "a%c", None));
        assert!(like_match("a%b", "a!%b", Some('!')));
        assert!(!like_match("aXb", "a!%b", Some('!')));
        assert!(like_match("aXYZb", "a%b", None));
        assert!(like_match("%%", "%", None));
        // Pathological backtracking case stays fast and correct.
        assert!(like_match(&"a".repeat(200), "%a%a%a%a%a%", None));
        assert!(!like_match(&"a".repeat(200), "%b%", None));
        // Trailing escape char treated as literal.
        assert!(like_match("a!", "a!", Some('!')));
    }

    #[test]
    fn non_boolean_selector_is_unknown() {
        assert_eq!(check("x + 1", &[("x", Value::Int(1))]), None);
        assert_eq!(check("'abc'", &[]), None);
    }

    #[test]
    fn division_by_zero_is_infinite_not_panic() {
        assert_eq!(check("1 / 0 > 100", &[]), Some(true), "+inf > 100");
    }
}
