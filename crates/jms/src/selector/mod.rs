//! The JMS message-selector language: lexer, parser, AST, and
//! three-valued evaluator.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{ArithOp, CmpOp, Expr};
pub use eval::{eval, like_match, matches, PropertySource};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse, ParseError};
