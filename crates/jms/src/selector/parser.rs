//! Recursive-descent parser for JMS selectors.
//!
//! Grammar (standard SQL-92 conditional subset):
//!
//! ```text
//! selector   := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | predicate
//! predicate  := sum ( cmp_op sum
//!                   | [NOT] BETWEEN sum AND sum
//!                   | [NOT] IN '(' string (',' string)* ')'
//!                   | [NOT] LIKE string [ESCAPE string]
//!                   | IS [NOT] NULL )?
//! sum        := product (('+'|'-') product)*
//! product    := unary (('*'|'/') unary)*
//! unary      := ('-'|'+') unary | primary
//! primary    := literal | identifier | '(' or_expr ')'
//! ```

use super::ast::{ArithOp, CmpOp, Expr};
use super::lexer::{lex, LexError, Token};
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (or end of input).
    Unexpected {
        /// What we found (None = end of input).
        found: Option<Token>,
        /// What we were trying to parse.
        expected: String,
    },
    /// Tokens remained after a complete expression.
    TrailingInput(Token),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected } => match found {
                Some(t) => write!(f, "unexpected token `{t}` (expected {expected})"),
                None => write!(f, "unexpected end of selector (expected {expected})"),
            },
            ParseError::TrailingInput(t) => write!(f, "trailing input starting at `{t}`"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse a selector string into an AST. The empty string (and all-
/// whitespace) is a valid selector that matches everything, represented as
/// `Expr::Bool(true)`, matching JMS semantics of a null/empty selector.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Ok(Expr::Bool(true));
    }
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.or_expr()?;
    if let Some(t) = p.peek() {
        return Err(ParseError::TrailingInput(t.clone()));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token, what: &str) -> Result<(), ParseError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().cloned(),
            expected: expected.to_owned(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum()?;
        // Optional predicate suffix.
        let negated = if self.peek() == Some(&Token::Not)
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Between) | Some(Token::In) | Some(Token::Like)
            ) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.peek() {
            Some(Token::Eq) => self.cmp_tail(CmpOp::Eq, lhs),
            Some(Token::Ne) => self.cmp_tail(CmpOp::Ne, lhs),
            Some(Token::Lt) => self.cmp_tail(CmpOp::Lt, lhs),
            Some(Token::Le) => self.cmp_tail(CmpOp::Le, lhs),
            Some(Token::Gt) => self.cmp_tail(CmpOp::Gt, lhs),
            Some(Token::Ge) => self.cmp_tail(CmpOp::Ge, lhs),
            Some(Token::Between) => {
                self.pos += 1;
                let lo = self.sum()?;
                self.expect(Token::And, "AND in BETWEEN")?;
                let hi = self.sum()?;
                Ok(Expr::Between {
                    expr: Box::new(lhs),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                })
            }
            Some(Token::In) => {
                self.pos += 1;
                self.expect(Token::LParen, "'(' after IN")?;
                let mut list = Vec::new();
                loop {
                    match self.next() {
                        Some(Token::Str(s)) => list.push(s),
                        _ => return Err(self.unexpected("string literal in IN list")),
                    }
                    if self.eat(&Token::Comma) {
                        continue;
                    }
                    self.expect(Token::RParen, "')' closing IN list")?;
                    break;
                }
                Ok(Expr::InList {
                    expr: Box::new(lhs),
                    list,
                    negated,
                })
            }
            Some(Token::Like) => {
                self.pos += 1;
                let pattern = match self.next() {
                    Some(Token::Str(s)) => s,
                    _ => return Err(self.unexpected("pattern string after LIKE")),
                };
                let escape = if self.eat(&Token::Escape) {
                    match self.next() {
                        Some(Token::Str(s)) if s.chars().count() == 1 => s.chars().next(),
                        _ => return Err(self.unexpected("single-character string after ESCAPE")),
                    }
                } else {
                    None
                };
                Ok(Expr::Like {
                    expr: Box::new(lhs),
                    pattern,
                    escape,
                    negated,
                })
            }
            Some(Token::Is) if !negated => {
                self.pos += 1;
                let negated = self.eat(&Token::Not);
                self.expect(Token::Null, "NULL after IS")?;
                Ok(Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                })
            }
            _ if negated => Err(self.unexpected("BETWEEN, IN or LIKE after NOT")),
            _ => Ok(lhs),
        }
    }

    fn cmp_tail(&mut self, op: CmpOp, lhs: Expr) -> Result<Expr, ParseError> {
        self.pos += 1;
        let rhs = self.sum()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.product()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.product()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn product(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            Ok(Expr::Neg(Box::new(inner)))
        } else if self.eat(&Token::Plus) {
            self.unary()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Int(v))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Float(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Token::Bool(b)) => {
                self.pos += 1;
                Ok(Expr::Bool(b))
            }
            Some(Token::Ident(s)) => {
                self.pos += 1;
                Ok(Expr::Ident(s))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.or_expr()?;
                self.expect(Token::RParen, "closing ')'")?;
                Ok(inner)
            }
            _ => Err(self.unexpected("literal, identifier or '('")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn paper_selector_parses() {
        assert_eq!(
            p("id<10000"),
            Expr::Cmp(
                CmpOp::Lt,
                Box::new(Expr::Ident("id".into())),
                Box::new(Expr::Int(10000))
            )
        );
    }

    #[test]
    fn empty_selector_matches_all() {
        assert_eq!(p(""), Expr::Bool(true));
        assert_eq!(p("   "), Expr::Bool(true));
    }

    #[test]
    fn precedence_or_and_not() {
        // NOT binds tighter than AND, AND tighter than OR.
        let e = p("a = 1 OR NOT b = 2 AND c = 3");
        match e {
            Expr::Or(_, rhs) => match *rhs {
                Expr::And(l, _) => assert!(matches!(*l, Expr::Not(_))),
                other => panic!("expected AND on rhs, got {other}"),
            },
            other => panic!("expected OR at top, got {other}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2*3).
        let e = p("x = 1 + 2 * 3");
        let s = format!("{e}");
        assert_eq!(s, "(x = (1 + (2 * 3)))");
    }

    #[test]
    fn between_and_not_between() {
        assert_eq!(format!("{}", p("x BETWEEN 1 AND 5")), "(x BETWEEN 1 AND 5)");
        assert_eq!(
            format!("{}", p("x NOT BETWEEN 1 AND 5")),
            "(x NOT BETWEEN 1 AND 5)"
        );
    }

    #[test]
    fn in_list() {
        assert_eq!(
            format!("{}", p("region IN ('uk', 'fr')")),
            "(region IN ('uk', 'fr'))"
        );
        assert_eq!(
            format!("{}", p("region NOT IN ('uk')")),
            "(region NOT IN ('uk'))"
        );
    }

    #[test]
    fn like_with_escape() {
        assert_eq!(
            format!("{}", p("name LIKE 'gen!_%' ESCAPE '!'")),
            "(name LIKE 'gen!_%' ESCAPE '!')"
        );
        assert_eq!(
            format!("{}", p("name NOT LIKE 'x%'")),
            "(name NOT LIKE 'x%')"
        );
    }

    #[test]
    fn is_null_forms() {
        assert_eq!(format!("{}", p("x IS NULL")), "(x IS NULL)");
        assert_eq!(format!("{}", p("x IS NOT NULL")), "(x IS NOT NULL)");
    }

    #[test]
    fn parentheses_override() {
        let e = p("(a = 1 OR b = 2) AND c = 3");
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn unary_minus_and_plus() {
        assert_eq!(format!("{}", p("x = -5")), "(x = (-5))");
        assert_eq!(format!("{}", p("x = +5")), "(x = 5)");
        assert_eq!(format!("{}", p("x = --5")), "(x = (-(-5)))");
    }

    #[test]
    fn error_cases() {
        assert!(parse("x <").is_err());
        assert!(parse("x BETWEEN 1").is_err());
        assert!(
            parse("x IN (1)").is_err(),
            "IN list must be strings per JMS"
        );
        assert!(parse("x LIKE 5").is_err());
        assert!(parse("x IS 5").is_err());
        assert!(parse("(x = 1").is_err());
        assert!(parse("x = 1 y").is_err(), "trailing input");
        assert!(parse("x NOT 5").is_err());
        assert!(parse("x LIKE 'a' ESCAPE 'ab'").is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse("x <").unwrap_err().to_string();
        assert!(e.contains("end of selector"), "{e}");
        let e = parse("x = 1 )").unwrap_err().to_string();
        assert!(e.contains("trailing"), "{e}");
    }

    #[test]
    fn complex_realistic_selector() {
        let e = p("(gen_id BETWEEN 0 AND 750 AND region IN ('uk','ie')) \
                   OR (power > 1000.0 AND status <> 'OFF' AND site LIKE 'hydra%')");
        assert!(e.node_count() > 10);
        assert_eq!(
            e.referenced_properties(),
            vec!["gen_id", "power", "region", "site", "status"]
        );
    }
}
