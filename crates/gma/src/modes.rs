//! GMA data-transfer modes (GFD.7 §3).

use std::fmt;

/// How data moves from producer to consumer once discovery has happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferMode {
    /// Either party initiates; the producer then streams events until
    /// either side terminates. Narada topics and R-GMA continuous queries
    /// are this mode.
    PublishSubscribe,
    /// The consumer initiates; the producer answers with all data in one
    /// response. R-GMA latest/history queries are this mode.
    QueryResponse,
    /// The producer initiates and transfers all data in one notification.
    Notification,
}

impl TransferMode {
    /// Who may initiate the transfer.
    pub fn initiator(self) -> &'static str {
        match self {
            TransferMode::PublishSubscribe => "either",
            TransferMode::QueryResponse => "consumer",
            TransferMode::Notification => "producer",
        }
    }

    /// Whether the transfer is a continuing stream (vs one-shot).
    pub fn is_streaming(self) -> bool {
        matches!(self, TransferMode::PublishSubscribe)
    }
}

impl fmt::Display for TransferMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransferMode::PublishSubscribe => "publish/subscribe",
            TransferMode::QueryResponse => "query/response",
            TransferMode::Notification => "notification",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(TransferMode::PublishSubscribe.is_streaming());
        assert!(!TransferMode::QueryResponse.is_streaming());
        assert!(!TransferMode::Notification.is_streaming());
        assert_eq!(TransferMode::QueryResponse.initiator(), "consumer");
        assert_eq!(TransferMode::Notification.initiator(), "producer");
        assert_eq!(TransferMode::PublishSubscribe.initiator(), "either");
        assert_eq!(format!("{}", TransferMode::QueryResponse), "query/response");
    }
}
