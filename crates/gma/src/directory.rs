//! The GMA directory service: an in-memory registry of producers and
//! consumers with *registration propagation delay*.
//!
//! GMA separates discovery from data transfer. The directory is eventually
//! consistent: a registration becomes *visible* to searches only after a
//! propagation delay (registry replication, mediator refresh cycles). This
//! single mechanism produces the paper's R-GMA warm-up behaviour: tuples
//! published before any consumer's plan includes the new producer are
//! never delivered (0.17 % loss in the 400-generator no-wait test).

use crate::modes::TransferMode;
use simcore::SimTime;
use simnet::Endpoint;

/// Handle to a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegistrationId(pub u64);

/// A registered producer.
#[derive(Debug, Clone)]
pub struct ProducerEntry {
    /// Registration handle.
    pub id: RegistrationId,
    /// Where the producer's data interface lives.
    pub endpoint: Endpoint,
    /// What it publishes: topic name or table name.
    pub resource: String,
    /// Supported transfer modes.
    pub modes: Vec<TransferMode>,
    /// When the registration was submitted.
    pub registered_at: SimTime,
    /// When it becomes visible to searches.
    pub visible_at: SimTime,
}

/// A registered consumer.
#[derive(Debug, Clone)]
pub struct ConsumerEntry {
    /// Registration handle.
    pub id: RegistrationId,
    /// Where the consumer's control interface lives.
    pub endpoint: Endpoint,
    /// Resource (topic/table) it wants.
    pub resource: String,
    /// When the registration was submitted.
    pub registered_at: SimTime,
    /// When it becomes visible.
    pub visible_at: SimTime,
}

/// In-memory directory with propagation delay.
pub struct Directory {
    producers: Vec<ProducerEntry>,
    consumers: Vec<ConsumerEntry>,
    propagation: simcore::SimDuration,
    next_id: u64,
}

impl Directory {
    /// Directory whose registrations take `propagation` to become visible.
    pub fn new(propagation: simcore::SimDuration) -> Self {
        Directory {
            producers: Vec::new(),
            consumers: Vec::new(),
            propagation,
            next_id: 0,
        }
    }

    fn next(&mut self) -> RegistrationId {
        let id = RegistrationId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Register a producer; visible after the propagation delay.
    pub fn register_producer(
        &mut self,
        now: SimTime,
        endpoint: Endpoint,
        resource: impl Into<String>,
        modes: Vec<TransferMode>,
    ) -> RegistrationId {
        let id = self.next();
        self.producers.push(ProducerEntry {
            id,
            endpoint,
            resource: resource.into(),
            modes,
            registered_at: now,
            visible_at: now + self.propagation,
        });
        id
    }

    /// Register a consumer; visible after the propagation delay.
    pub fn register_consumer(
        &mut self,
        now: SimTime,
        endpoint: Endpoint,
        resource: impl Into<String>,
    ) -> RegistrationId {
        let id = self.next();
        self.consumers.push(ConsumerEntry {
            id,
            endpoint,
            resource: resource.into(),
            registered_at: now,
            visible_at: now + self.propagation,
        });
        id
    }

    /// Remove a registration (producer or consumer).
    pub fn unregister(&mut self, id: RegistrationId) {
        self.producers.retain(|p| p.id != id);
        self.consumers.retain(|c| c.id != id);
    }

    /// Producers for `resource` visible at `now`.
    pub fn find_producers(&self, now: SimTime, resource: &str) -> Vec<&ProducerEntry> {
        self.producers
            .iter()
            .filter(|p| p.resource == resource && p.visible_at <= now)
            .collect()
    }

    /// Consumers for `resource` visible at `now`.
    pub fn find_consumers(&self, now: SimTime, resource: &str) -> Vec<&ConsumerEntry> {
        self.consumers
            .iter()
            .filter(|c| c.resource == resource && c.visible_at <= now)
            .collect()
    }

    /// All producer registrations (including not-yet-visible), for
    /// diagnostics.
    pub fn producer_count(&self) -> usize {
        self.producers.len()
    }

    /// All consumer registrations.
    pub fn consumer_count(&self) -> usize {
        self.consumers.len()
    }

    /// The configured propagation delay.
    pub fn propagation(&self) -> simcore::SimDuration {
        self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ActorId, SimDuration};
    use simos::NodeId;

    fn ep(n: u16) -> Endpoint {
        Endpoint::new(NodeId(n), ActorId::from_index(n as usize))
    }

    #[test]
    fn propagation_gates_visibility() {
        let mut d = Directory::new(SimDuration::from_secs(5));
        let t0 = SimTime::from_secs(10);
        d.register_producer(t0, ep(0), "generator", vec![TransferMode::PublishSubscribe]);
        assert!(d.find_producers(t0, "generator").is_empty());
        assert!(d
            .find_producers(t0 + SimDuration::from_secs(4), "generator")
            .is_empty());
        assert_eq!(
            d.find_producers(t0 + SimDuration::from_secs(5), "generator")
                .len(),
            1
        );
    }

    #[test]
    fn resource_filtering() {
        let mut d = Directory::new(SimDuration::ZERO);
        let t = SimTime::from_secs(1);
        d.register_producer(t, ep(0), "generator", vec![]);
        d.register_producer(t, ep(1), "weather", vec![]);
        d.register_consumer(t, ep(2), "generator");
        assert_eq!(d.find_producers(t, "generator").len(), 1);
        assert_eq!(d.find_producers(t, "weather").len(), 1);
        assert_eq!(d.find_producers(t, "nothing").len(), 0);
        assert_eq!(d.find_consumers(t, "generator").len(), 1);
    }

    #[test]
    fn unregister_removes() {
        let mut d = Directory::new(SimDuration::ZERO);
        let t = SimTime::ZERO;
        let id = d.register_producer(t, ep(0), "generator", vec![]);
        assert_eq!(d.producer_count(), 1);
        d.unregister(id);
        assert_eq!(d.producer_count(), 0);
        assert!(d.find_producers(t, "generator").is_empty());
    }

    #[test]
    fn ids_unique_across_kinds() {
        let mut d = Directory::new(SimDuration::ZERO);
        let a = d.register_producer(SimTime::ZERO, ep(0), "x", vec![]);
        let b = d.register_consumer(SimTime::ZERO, ep(1), "x");
        assert_ne!(a, b);
        assert_eq!(d.consumer_count(), 1);
    }
}
