#![warn(missing_docs)]
//! # gma — the GGF Grid Monitoring Architecture (GFD.7)
//!
//! The paper frames both middlewares through the GGF's Grid Monitoring
//! Architecture: *producers* gather data, *consumers* receive it, and a
//! *directory service* mediates discovery, deliberately separated from the
//! data path for scalability. Three data-transfer modes are defined:
//! publish/subscribe, query/response, and notification.
//!
//! This crate provides those abstractions plus a reusable in-memory
//! directory with registration propagation delay — the mechanism behind
//! R-GMA's warm-up data loss (§III.F: producers must wait 5–10 s before
//! publishing or tuples are lost).

pub mod directory;
pub mod modes;

pub use directory::{ConsumerEntry, Directory, ProducerEntry, RegistrationId};
pub use modes::TransferMode;
