//! `simtrace`: deterministic tracing and live metrics for the gridmon
//! simulation stack.
//!
//! The paper's headline artifact is a *decomposition* — RTT = PRT + PT +
//! SRT (fig 15) — but end-of-run aggregates can't say where inside the
//! middleware a given message spent its time. This crate records every
//! message's lifecycle as timestamped events keyed on [`simcore::SimTime`]
//! (never `std::time`), so a run can be replayed hop by hop:
//! publish → broker → selector match → delivery for NaradaBrokering,
//! INSERT → storage → continuous SELECT → delivery for R-GMA.
//!
//! Pieces:
//!
//! * [`TraceId`] — causal id carried in `wire::Message` headers and
//!   mirrored from `telemetry::ProbeId` for probe traffic.
//! * [`TraceCollector`] — a bounded ring buffer of [`TraceEvent`]s plus
//!   live [`Counter`]s/[`Gauge`]s, registered as a kernel service.
//!   Instrumentation sites look it up with `Context::try_service_mut`,
//!   so when tracing is off (service absent) the cost is one type-map
//!   probe and no allocation.
//! * [`TraceSampler`] — an actor sampling the counters on the same
//!   cadence as `simos::VmstatSampler`, producing the unified resource
//!   log.
//! * [`export`] — JSONL and Chrome `trace_event` (Perfetto-loadable)
//!   exporters, all byte-deterministic for a given event stream.
//! * [`TraceSummary`] — per-message PRT/PT/SRT reconstruction that can
//!   be cross-checked against the `RttCollector`'s independent record;
//!   any disagreement is a bug in the instrumentation or the kernel.

mod collector;
mod event;
pub mod export;
mod sampler;
mod summary;

pub use collector::{with_trace, TraceCollector, DEFAULT_CAPACITY};
pub use event::{Counter, EventKind, Gauge, TraceEvent, TraceId, COUNTER_COUNT, GAUGE_COUNT};
pub use sampler::{CounterSample, TraceSampler};
pub use summary::{ProbeBreakdown, TraceSummary};
