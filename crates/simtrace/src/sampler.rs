//! Periodic counter sampling on the vmstat cadence.

use crate::collector::TraceCollector;
use crate::event::{Counter, Gauge, COUNTER_COUNT, GAUGE_COUNT};
use simcore::{Actor, Context, Payload, SimDuration, SimTime};

/// One snapshot of every counter and gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample instant.
    pub at: SimTime,
    /// Counter values at `at`, in [`Counter::ALL`] slot order.
    pub counters: [u64; COUNTER_COUNT],
    /// Gauge levels at `at`, in [`Gauge::ALL`] slot order.
    pub gauges: [u64; GAUGE_COUNT],
}

impl CounterSample {
    /// Value of one counter in this sample.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Level of one gauge in this sample.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }
}

/// Actor that snapshots the [`TraceCollector`] every `interval` —
/// deploy with the same interval as `simos::VmstatSampler` so counter
/// samples and vmstat rows land on the same instants and merge into one
/// unified resource log.
pub struct TraceSampler {
    interval: SimDuration,
}

struct Tick;

impl TraceSampler {
    /// Sample every `interval` (the paper's resource cadence is 1 s).
    pub fn new(interval: SimDuration) -> Self {
        TraceSampler { interval }
    }
}

impl Actor for TraceSampler {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Sample at t=0 as well: an N-second run on an I-second cadence
        // yields exactly N/I + 1 samples, with the baseline row making
        // the first interval's deltas well-defined.
        let now = ctx.now();
        ctx.service_mut::<TraceCollector>().sample(now);
        ctx.timer(self.interval, Tick);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        debug_assert!(msg.downcast::<Tick>().is_ok());
        let now = ctx.now();
        ctx.service_mut::<TraceCollector>().sample(now);
        ctx.timer(self.interval, Tick);
    }

    fn name(&self) -> &str {
        "trace-sampler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Simulation;

    #[test]
    fn samples_on_cadence() {
        let mut sim = Simulation::new(1);
        sim.add_service(TraceCollector::new());
        sim.add_actor(TraceSampler::new(SimDuration::from_secs(1)));
        sim.run_until(SimTime::from_millis(3_500));
        let tr = sim.service::<TraceCollector>().unwrap();
        let at: Vec<u64> = tr.samples().iter().map(|s| s.at.as_micros()).collect();
        assert_eq!(at, vec![0, 1_000_000, 2_000_000, 3_000_000]);
    }

    #[test]
    fn n_seconds_yield_n_over_interval_plus_one_monotone_samples() {
        use crate::event::Counter;
        use simcore::{FnActor, Payload};
        // A horizon that is an exact multiple of the cadence must produce
        // exactly N/interval + 1 samples (t=0 baseline through t=N
        // inclusive — the kernel processes events AT the horizon).
        for (n_secs, interval_secs) in [(5u64, 1u64), (12, 3), (7, 1)] {
            let mut sim = Simulation::new(7);
            sim.add_service(TraceCollector::new());
            sim.add_actor(TraceSampler::new(SimDuration::from_secs(interval_secs)));
            // A worker bumps a counter every 700 ms so successive samples
            // see strictly growing totals.
            let worker = sim.add_actor(FnActor(|_m: Payload, ctx: &mut Context| {
                ctx.service_mut::<TraceCollector>()
                    .count(Counter::BrokerPublishes, 1);
                ctx.timer(SimDuration::from_millis(700), ());
            }));
            sim.schedule(SimDuration::ZERO, worker, Box::new(()));
            sim.run_until(SimTime::from_secs(n_secs));
            let tr = sim.service::<TraceCollector>().unwrap();
            let samples = tr.samples();
            assert_eq!(
                samples.len() as u64,
                n_secs / interval_secs + 1,
                "{n_secs}s at {interval_secs}s cadence"
            );
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(s.at.as_micros(), i as u64 * interval_secs * 1_000_000);
            }
            // Counters are cumulative: monotonically non-decreasing
            // across samples, and growing over the whole run.
            for w in samples.windows(2) {
                for c in Counter::ALL {
                    assert!(w[1].counter(c) >= w[0].counter(c), "{c:?} went backwards");
                }
            }
            let first = samples.first().unwrap().counter(Counter::BrokerPublishes);
            let last = samples.last().unwrap().counter(Counter::BrokerPublishes);
            assert!(last > first, "worker kept publishing");
        }
    }
}
