//! Periodic counter sampling on the vmstat cadence.

use crate::collector::TraceCollector;
use crate::event::{Counter, Gauge, COUNTER_COUNT, GAUGE_COUNT};
use simcore::{Actor, Context, Payload, SimDuration, SimTime};

/// One snapshot of every counter and gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample instant.
    pub at: SimTime,
    /// Counter values at `at`, in [`Counter::ALL`] slot order.
    pub counters: [u64; COUNTER_COUNT],
    /// Gauge levels at `at`, in [`Gauge::ALL`] slot order.
    pub gauges: [u64; GAUGE_COUNT],
}

impl CounterSample {
    /// Value of one counter in this sample.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Level of one gauge in this sample.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }
}

/// Actor that snapshots the [`TraceCollector`] every `interval` —
/// deploy with the same interval as `simos::VmstatSampler` so counter
/// samples and vmstat rows land on the same instants and merge into one
/// unified resource log.
pub struct TraceSampler {
    interval: SimDuration,
}

struct Tick;

impl TraceSampler {
    /// Sample every `interval` (the paper's resource cadence is 1 s).
    pub fn new(interval: SimDuration) -> Self {
        TraceSampler { interval }
    }
}

impl Actor for TraceSampler {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.timer(self.interval, Tick);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        debug_assert!(msg.downcast::<Tick>().is_ok());
        let now = ctx.now();
        ctx.service_mut::<TraceCollector>().sample(now);
        ctx.timer(self.interval, Tick);
    }

    fn name(&self) -> &str {
        "trace-sampler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Simulation;

    #[test]
    fn samples_on_cadence() {
        let mut sim = Simulation::new(1);
        sim.add_service(TraceCollector::new());
        sim.add_actor(TraceSampler::new(SimDuration::from_secs(1)));
        sim.run_until(SimTime::from_millis(3_500));
        let tr = sim.service::<TraceCollector>().unwrap();
        let at: Vec<u64> = tr.samples().iter().map(|s| s.at.as_micros()).collect();
        assert_eq!(at, vec![1_000_000, 2_000_000, 3_000_000]);
    }
}
