//! Per-message PRT/PT/SRT reconstruction from the event stream.

use crate::collector::TraceCollector;
use crate::event::{EventKind, TraceId};
use simcore::SimTime;
use std::collections::BTreeMap;

/// The four fig-15 instants of one traced message, rebuilt from spans,
/// plus a count of the hops observed in between.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeBreakdown {
    /// `before_sending`: the application called publish/INSERT.
    pub publish_begin: Option<SimTime>,
    /// `after_sending`: the synchronous send returned.
    pub publish_end: Option<SimTime>,
    /// `before_receiving`: the middleware made the message available.
    pub available: Option<SimTime>,
    /// `after_receiving`: the receiving application has the message.
    pub delivered: Option<SimTime>,
    /// Hop events (broker/storage/network) attributed to this message.
    pub hops: u32,
}

impl ProbeBreakdown {
    /// Publishing response time, when both endpoints were traced.
    pub fn prt(&self) -> Option<u64> {
        Some(
            self.publish_end?
                .saturating_since(self.publish_begin?)
                .as_micros(),
        )
    }

    /// Middleware process time.
    pub fn pt(&self) -> Option<u64> {
        Some(
            self.available?
                .saturating_since(self.publish_end?)
                .as_micros(),
        )
    }

    /// Subscribing response time.
    pub fn srt(&self) -> Option<u64> {
        Some(
            self.delivered?
                .saturating_since(self.available?)
                .as_micros(),
        )
    }

    /// End-to-end round trip.
    pub fn rtt(&self) -> Option<u64> {
        Some(
            self.delivered?
                .saturating_since(self.publish_begin?)
                .as_micros(),
        )
    }

    /// True when all four instants were observed.
    pub fn complete(&self) -> bool {
        self.publish_begin.is_some()
            && self.publish_end.is_some()
            && self.available.is_some()
            && self.delivered.is_some()
    }
}

/// Everything reconstructed from one run's trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Per-message breakdowns, keyed (and therefore ordered) by trace id.
    pub probes: BTreeMap<TraceId, ProbeBreakdown>,
    /// Events the summary was built from.
    pub total_events: u64,
    /// Events lost to the ring bound before the summary ran.
    pub evicted_events: u64,
}

impl TraceSummary {
    /// Rebuild per-message lifecycles from the collector's event ring.
    ///
    /// Duplicate `Available`/`Delivered` events (UDP redelivery) keep
    /// the first instant, matching `RttCollector` idempotence.
    pub fn from_collector(tr: &TraceCollector) -> Self {
        let mut probes: BTreeMap<TraceId, ProbeBreakdown> = BTreeMap::new();
        let mut total = 0u64;
        for ev in tr.events() {
            total += 1;
            let Some(id) = ev.trace else { continue };
            let slot = probes.entry(id).or_default();
            match ev.kind {
                EventKind::PublishBegin => slot.publish_begin = Some(ev.at),
                EventKind::PublishEnd => slot.publish_end = Some(ev.at),
                EventKind::Available => {
                    if slot.available.is_none() {
                        slot.available = Some(ev.at);
                    }
                }
                EventKind::Delivered => {
                    if slot.delivered.is_none() {
                        slot.delivered = Some(ev.at);
                    }
                }
                _ => slot.hops += 1,
            }
        }
        TraceSummary {
            probes,
            total_events: total,
            evicted_events: tr.evicted(),
        }
    }

    /// Cross-check one probe's trace-derived instants against an
    /// independent record of the same four instants (the
    /// `RttCollector`'s). Returns a description of the first
    /// disagreement, or `None` when they match exactly. Because the
    /// decomposition telescopes (PRT + PT + SRT = RTT by construction),
    /// instant-level equality is the strongest possible check.
    ///
    /// `evicted_events > 0` disables the "missing from trace" direction
    /// for absent probes, since eviction legitimately loses history.
    pub fn check_probe(
        &self,
        id: TraceId,
        before_sending: SimTime,
        after_sending: Option<SimTime>,
        before_receiving: Option<SimTime>,
        after_receiving: Option<SimTime>,
    ) -> Option<String> {
        let Some(b) = self.probes.get(&id) else {
            if self.evicted_events > 0 {
                return None;
            }
            return Some(format!("probe {} missing from trace", id.0));
        };
        let pairs = [
            ("before_sending", Some(before_sending), b.publish_begin),
            ("after_sending", after_sending, b.publish_end),
            ("before_receiving", before_receiving, b.available),
            ("after_receiving", after_receiving, b.delivered),
        ];
        for (name, collector, trace) in pairs {
            if let Some(c) = collector {
                match trace {
                    None if self.evicted_events == 0 => {
                        return Some(format!("probe {}: {name} missing from trace", id.0));
                    }
                    Some(t) if t != c => {
                        return Some(format!(
                            "probe {}: {name} disagrees (trace {} us, collector {} us)",
                            id.0,
                            t.as_micros(),
                            c.as_micros()
                        ));
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn collector_with_full_lifecycle() -> TraceCollector {
        let mut c = TraceCollector::new();
        let id = Some(TraceId(7));
        c.record(t(10), id, 1, EventKind::PublishBegin);
        c.record(t(12), id, 1, EventKind::PublishEnd);
        c.record(t(13), id, 2, EventKind::BrokerRecv { broker: 0 });
        c.record(
            t(13),
            id,
            2,
            EventKind::SelectorMatch {
                matched: 1,
                missed: 3,
            },
        );
        c.record(t(40), id, 3, EventKind::Available);
        c.record(t(45), id, 3, EventKind::Delivered);
        c.record(t(50), id, 3, EventKind::Delivered); // duplicate redelivery
        c
    }

    #[test]
    fn decomposition_telescopes() {
        let c = collector_with_full_lifecycle();
        let s = TraceSummary::from_collector(&c);
        let b = s.probes[&TraceId(7)];
        assert!(b.complete());
        assert_eq!(b.prt(), Some(2_000));
        assert_eq!(b.pt(), Some(28_000));
        assert_eq!(b.srt(), Some(5_000));
        assert_eq!(b.rtt(), Some(35_000));
        assert_eq!(
            b.rtt().unwrap(),
            b.prt().unwrap() + b.pt().unwrap() + b.srt().unwrap()
        );
        assert_eq!(b.hops, 2);
        assert_eq!(b.delivered, Some(t(45)), "first delivery wins");
    }

    #[test]
    fn cross_check_detects_disagreement() {
        let c = collector_with_full_lifecycle();
        let s = TraceSummary::from_collector(&c);
        assert_eq!(
            s.check_probe(TraceId(7), t(10), Some(t(12)), Some(t(40)), Some(t(45))),
            None
        );
        let bad = s.check_probe(TraceId(7), t(10), Some(t(12)), Some(t(41)), Some(t(45)));
        assert!(bad.unwrap().contains("before_receiving"));
        let missing = s.check_probe(TraceId(9), t(0), None, None, None);
        assert!(missing.unwrap().contains("missing"));
    }

    #[test]
    fn eviction_suppresses_missing_probe_reports() {
        let mut c = TraceCollector::with_capacity(1);
        c.record(t(1), Some(TraceId(0)), 0, EventKind::PublishBegin);
        c.record(t(2), Some(TraceId(1)), 0, EventKind::PublishBegin);
        // The capacity bound is applied by the merge every run goes
        // through; the live store is unbounded.
        let c = TraceCollector::merged([c]);
        let s = TraceSummary::from_collector(&c);
        assert_eq!(s.evicted_events, 1);
        assert_eq!(s.check_probe(TraceId(0), t(1), None, None, None), None);
    }
}
