//! The ring-buffer trace collector kernel service.

use crate::event::{Counter, EventKind, Gauge, TraceEvent, TraceId, COUNTER_COUNT, GAUGE_COUNT};
use crate::sampler::CounterSample;
use simcore::{Context, SimTime};

/// Default ring capacity: enough for every event of the scaled
/// experiment suite while bounding memory to a few MB of `Copy` events.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Bounded event sink plus live counters, registered as a kernel
/// service. All state is plain vectors and fixed arrays; recording one
/// event after the ring is full never allocates.
pub struct TraceCollector {
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once `events` reached capacity.
    head: usize,
    capacity: usize,
    /// Events evicted by the ring bound.
    evicted: u64,
    counters: [u64; COUNTER_COUNT],
    gauges: [u64; GAUGE_COUNT],
    samples: Vec<CounterSample>,
}

impl TraceCollector {
    /// Collector with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Collector bounded to `capacity` retained events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCollector {
            events: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            evicted: 0,
            counters: [0; COUNTER_COUNT],
            gauges: [0; GAUGE_COUNT],
            samples: Vec::new(),
        }
    }

    /// Record one event.
    #[inline]
    pub fn record(&mut self, at: SimTime, trace: Option<TraceId>, actor: u64, kind: EventKind) {
        let ev = TraceEvent {
            at,
            trace,
            actor,
            kind,
        };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    /// Bump a counter.
    #[inline]
    pub fn count(&mut self, c: Counter, delta: u64) {
        self.counters[c as usize] += delta;
    }

    /// Set a gauge level.
    #[inline]
    pub fn gauge_set(&mut self, g: Gauge, v: u64) {
        self.gauges[g as usize] = v;
    }

    /// Adjust a gauge level by a signed delta (saturating at zero).
    #[inline]
    pub fn gauge_add(&mut self, g: Gauge, delta: i64) {
        let slot = &mut self.gauges[g as usize];
        *slot = slot.saturating_add_signed(delta);
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Current level of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Snapshot all counters/gauges into the sample log (called by
    /// [`crate::TraceSampler`] on the vmstat cadence).
    pub fn sample(&mut self, at: SimTime) {
        self.samples.push(CounterSample {
            at,
            counters: self.counters,
            gauges: self.gauges,
        });
    }

    /// All counter samples, in time order.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, tail) = self.events.split_at(self.head);
        tail.iter().chain(wrapped.iter())
    }

    /// Events recorded and still retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound (0 means the trace is complete).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

/// Run `f` against the trace collector if one is registered; a no-op
/// otherwise. This is the only call instrumentation sites need: when
/// tracing is off the service is simply absent and the cost is one
/// type-map probe — no allocation, no event, no branch on message data.
#[inline]
pub fn with_trace(ctx: &mut Context<'_>, f: impl FnOnce(&mut TraceCollector, SimTime)) {
    let now = ctx.now();
    if let Some(tr) = ctx.try_service_mut::<TraceCollector>() {
        f(tr, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> (SimTime, Option<TraceId>, u64, EventKind) {
        (
            SimTime::from_micros(n),
            Some(TraceId(n)),
            0,
            EventKind::PublishBegin,
        )
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let mut c = TraceCollector::with_capacity(3);
        for n in 0..5 {
            let (at, t, a, k) = ev(n);
            c.record(at, t, a, k);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evicted(), 2);
        let ids: Vec<u64> = c.events().map(|e| e.trace.unwrap().0).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest first, newest retained");
    }

    #[test]
    fn counters_and_gauges() {
        let mut c = TraceCollector::new();
        c.count(Counter::NetDrops, 2);
        c.count(Counter::NetDrops, 1);
        c.gauge_add(Gauge::NicBacklogUs, 5);
        c.gauge_add(Gauge::NicBacklogUs, -2);
        c.gauge_add(Gauge::BatchOccupancy, -9); // saturates at 0
        assert_eq!(c.counter(Counter::NetDrops), 3);
        assert_eq!(c.gauge(Gauge::NicBacklogUs), 3);
        assert_eq!(c.gauge(Gauge::BatchOccupancy), 0);
        c.sample(SimTime::from_secs(1));
        assert_eq!(c.samples().len(), 1);
        assert_eq!(c.samples()[0].counter(Counter::NetDrops), 3);
    }

    #[test]
    fn with_trace_is_noop_without_service() {
        let mut sim = simcore::Simulation::new(1);
        let probe = sim.add_actor(simcore::FnActor(
            |_m: simcore::Payload, ctx: &mut Context| {
                with_trace(ctx, |tr, now| {
                    tr.record(now, None, 0, EventKind::PublishBegin);
                });
            },
        ));
        sim.schedule(simcore::SimDuration::ZERO, probe, Box::new(()));
        sim.run_until(SimTime::from_secs(1));
        // No collector registered: nothing to observe, nothing panicked.
        assert!(sim.service::<TraceCollector>().is_none());
    }
}
