//! The trace collector kernel service.
//!
//! Sharding model: every shard owns one collector recording only what
//! executes locally. Each record is keyed `(time, recorder lane,
//! per-lane seq)` — interleaving-invariant, because a lane's record
//! stream is a function of that actor's own deterministic execution —
//! and [`TraceCollector::merged`] re-sorts the union of per-shard
//! stores by that key. Counters merge by element-wise sum (each bump
//! happens on exactly one shard), gauges by replaying a keyed op log
//! (a gauge like the NIC backlog has many writers spread across
//! shards), and counter samples by summing the per-shard snapshots the
//! replicated sampler takes at identical instants. The ring bound is
//! applied at merge time (`evicted` counts what the trim discarded),
//! so the retained window is a function of the merged key order, never
//! of which shard recorded an event.

use crate::event::{Counter, EventKind, Gauge, TraceEvent, TraceId, COUNTER_COUNT, GAUGE_COUNT};
use crate::sampler::CounterSample;
use simcore::{Context, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Default ring capacity: enough for every event of the scaled
/// experiment suite while bounding the exported artifact to a few MB of
/// `Copy` events.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

#[derive(Debug, Clone, Copy)]
enum GaugeOpKind {
    Set(u64),
    Add(i64),
}

#[derive(Debug, Clone, Copy)]
struct GaugeOp {
    at: SimTime,
    lane: u32,
    seq: u64,
    gauge: usize,
    kind: GaugeOpKind,
}

impl GaugeOp {
    fn key(&self) -> (SimTime, u32, u64, usize, u8, u64) {
        let (tag, raw) = match self.kind {
            GaugeOpKind::Set(v) => (0u8, v),
            GaugeOpKind::Add(d) => (1u8, d as u64),
        };
        (self.at, self.lane, self.seq, self.gauge, tag, raw)
    }

    fn apply(&self, gauges: &mut [u64; GAUGE_COUNT]) {
        let slot = &mut gauges[self.gauge];
        match self.kind {
            GaugeOpKind::Set(v) => *slot = v,
            GaugeOpKind::Add(d) => *slot = slot.saturating_add_signed(d),
        }
    }
}

/// Event sink plus live counters, registered as a kernel service. The
/// store is unbounded during the run; the capacity bound is enforced by
/// [`merged`](TraceCollector::merged), which every run (any shard
/// count) goes through before exporting.
pub struct TraceCollector {
    /// `(lane, seq, event)` in recording order.
    events: Vec<(u32, u64, TraceEvent)>,
    capacity: usize,
    /// Events discarded by the merge-time capacity trim.
    evicted: u64,
    counters: [u64; COUNTER_COUNT],
    gauges: [u64; GAUGE_COUNT],
    samples: Vec<CounterSample>,
    gauge_ops: Vec<GaugeOp>,
    cur_lane: u32,
    cur_at: SimTime,
    lane_seqs: HashMap<u32, u64>,
}

impl TraceCollector {
    /// Collector with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Collector bounded to `capacity` retained events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCollector {
            events: Vec::new(),
            capacity: capacity.max(1),
            evicted: 0,
            counters: [0; COUNTER_COUNT],
            gauges: [0; GAUGE_COUNT],
            samples: Vec::new(),
            gauge_ops: Vec::new(),
            cur_lane: 0,
            cur_at: SimTime::ZERO,
            lane_seqs: HashMap::new(),
        }
    }

    /// Set the recording context for subsequent records; called by
    /// [`with_trace`] with the acting actor's lane and the kernel clock
    /// so record keys are shard-invariant.
    pub fn set_recorder(&mut self, lane: u32, at: SimTime) {
        self.cur_lane = lane;
        self.cur_at = at;
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.lane_seqs.entry(self.cur_lane).or_insert(0);
        let n = *seq;
        *seq += 1;
        n
    }

    /// Record one event.
    #[inline]
    pub fn record(&mut self, at: SimTime, trace: Option<TraceId>, actor: u64, kind: EventKind) {
        let seq = self.next_seq();
        self.events.push((
            self.cur_lane,
            seq,
            TraceEvent {
                at,
                trace,
                actor,
                kind,
            },
        ));
    }

    /// Bump a counter. Sums across shards at merge: call only from
    /// actors that run on exactly one shard (replicated actors must
    /// gate on `ctx.accounting_primary()` themselves).
    #[inline]
    pub fn count(&mut self, c: Counter, delta: u64) {
        self.counters[c as usize] += delta;
    }

    /// Set a gauge level.
    #[inline]
    pub fn gauge_set(&mut self, g: Gauge, v: u64) {
        self.gauges[g as usize] = v;
        let op = GaugeOp {
            at: self.cur_at,
            lane: self.cur_lane,
            seq: self.next_seq(),
            gauge: g as usize,
            kind: GaugeOpKind::Set(v),
        };
        self.gauge_ops.push(op);
    }

    /// Adjust a gauge level by a signed delta (saturating at zero).
    #[inline]
    pub fn gauge_add(&mut self, g: Gauge, delta: i64) {
        let slot = &mut self.gauges[g as usize];
        *slot = slot.saturating_add_signed(delta);
        let op = GaugeOp {
            at: self.cur_at,
            lane: self.cur_lane,
            seq: self.next_seq(),
            gauge: g as usize,
            kind: GaugeOpKind::Add(delta),
        };
        self.gauge_ops.push(op);
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Current level of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Snapshot all counters/gauges into the sample log (called by
    /// [`crate::TraceSampler`] on the vmstat cadence).
    pub fn sample(&mut self, at: SimTime) {
        self.samples.push(CounterSample {
            at,
            counters: self.counters,
            gauges: self.gauges,
        });
    }

    /// All counter samples, in time order.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().map(|(_, _, ev)| ev)
    }

    /// Events recorded and still retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the capacity bound (0 means the trace is
    /// complete). Set by [`merged`](Self::merged).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Merge per-shard collectors into the canonical whole-run trace.
    ///
    /// * events: union re-sorted by `(time, lane, seq)`, then trimmed to
    ///   the capacity bound keeping the newest (the serial ring's
    ///   behavior, now defined on the canonical order);
    /// * counters: element-wise sum;
    /// * gauges: keyed op-log replay (exact duplicate ops from
    ///   replicated recorders collapse to one);
    /// * samples: per-instant element-wise sum of counter snapshots,
    ///   with gauge levels recomputed from the op log at each instant.
    ///
    /// Every run goes through this — a serial run is merged-of-one — so
    /// exports are byte-identical across shard counts by construction.
    pub fn merged(parts: impl IntoIterator<Item = TraceCollector>) -> TraceCollector {
        let mut capacity = 1;
        let mut events: Vec<(u32, u64, TraceEvent)> = Vec::new();
        let mut counters = [0u64; COUNTER_COUNT];
        let mut gauge_ops: Vec<GaugeOp> = Vec::new();
        let mut sample_sums: BTreeMap<SimTime, [u64; COUNTER_COUNT]> = BTreeMap::new();
        for part in parts {
            capacity = capacity.max(part.capacity);
            events.extend(part.events);
            for (i, v) in part.counters.iter().enumerate() {
                counters[i] += v;
            }
            gauge_ops.extend(part.gauge_ops);
            for s in part.samples {
                let sums = sample_sums.entry(s.at).or_insert([0; COUNTER_COUNT]);
                for (i, v) in s.counters.iter().enumerate() {
                    sums[i] += v;
                }
            }
        }
        events.sort_by_key(|(lane, seq, ev)| (ev.at, *lane, *seq));
        let evicted = events.len().saturating_sub(capacity) as u64;
        events.drain(..evicted as usize);
        gauge_ops.sort_by_key(|op| op.key());
        gauge_ops.dedup_by_key(|op| op.key());
        // Rebuild samples: counters are the summed snapshots; gauges are
        // the op log replayed up to each instant.
        let mut samples = Vec::with_capacity(sample_sums.len());
        let mut gauges = [0u64; GAUGE_COUNT];
        let mut cursor = 0usize;
        for (at, sums) in sample_sums {
            while cursor < gauge_ops.len() && gauge_ops[cursor].at <= at {
                gauge_ops[cursor].apply(&mut gauges);
                cursor += 1;
            }
            samples.push(CounterSample {
                at,
                counters: sums,
                gauges,
            });
        }
        let mut final_gauges = gauges;
        for op in &gauge_ops[cursor..] {
            op.apply(&mut final_gauges);
        }
        TraceCollector {
            events,
            capacity,
            evicted,
            counters,
            gauges: final_gauges,
            samples,
            gauge_ops,
            cur_lane: 0,
            cur_at: SimTime::ZERO,
            lane_seqs: HashMap::new(),
        }
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

/// Run `f` against the trace collector if one is registered; a no-op
/// otherwise. This is the only call instrumentation sites need: when
/// tracing is off the service is simply absent and the cost is one
/// type-map probe — no allocation, no event, no branch on message data.
/// Sets the recorder context (acting actor's lane, kernel clock) so
/// records carry shard-invariant keys.
#[inline]
pub fn with_trace(ctx: &mut Context<'_>, f: impl FnOnce(&mut TraceCollector, SimTime)) {
    let now = ctx.now();
    let lane = ctx.self_id().index() as u32;
    if let Some(tr) = ctx.try_service_mut::<TraceCollector>() {
        tr.set_recorder(lane, now);
        f(tr, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> (SimTime, Option<TraceId>, u64, EventKind) {
        (
            SimTime::from_micros(n),
            Some(TraceId(n)),
            0,
            EventKind::PublishBegin,
        )
    }

    #[test]
    fn merge_trims_to_capacity_keeping_newest() {
        let mut c = TraceCollector::with_capacity(3);
        for n in 0..5 {
            let (at, t, a, k) = ev(n);
            c.record(at, t, a, k);
        }
        assert_eq!(c.len(), 5, "live store is unbounded");
        let m = TraceCollector::merged([c]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.evicted(), 2);
        let ids: Vec<u64> = m.events().map(|e| e.trace.unwrap().0).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest first, newest retained");
    }

    #[test]
    fn counters_and_gauges() {
        let mut c = TraceCollector::new();
        c.count(Counter::NetDrops, 2);
        c.count(Counter::NetDrops, 1);
        c.gauge_add(Gauge::NicBacklogUs, 5);
        c.gauge_add(Gauge::NicBacklogUs, -2);
        c.gauge_add(Gauge::BatchOccupancy, -9); // saturates at 0
        assert_eq!(c.counter(Counter::NetDrops), 3);
        assert_eq!(c.gauge(Gauge::NicBacklogUs), 3);
        assert_eq!(c.gauge(Gauge::BatchOccupancy), 0);
        c.sample(SimTime::from_secs(1));
        assert_eq!(c.samples().len(), 1);
        assert_eq!(c.samples()[0].counter(Counter::NetDrops), 3);
    }

    #[test]
    fn merged_interleaves_shards_and_replays_gauges() {
        // Shard A: lane 1 records at t=1,3; bumps a counter; moves a
        // gauge. Shard B: lane 2 records at t=2; the replicated sampler
        // snapshots on both shards at t=5.
        let t = SimTime::from_micros;
        let mut a = TraceCollector::new();
        a.set_recorder(1, t(1));
        a.record(t(1), Some(TraceId(10)), 1, EventKind::PublishBegin);
        a.count(Counter::BrokerPublishes, 2);
        a.gauge_add(Gauge::NicBacklogUs, 7);
        a.set_recorder(1, t(3));
        a.record(t(3), Some(TraceId(11)), 1, EventKind::PublishEnd);
        a.sample(t(5));
        let mut b = TraceCollector::new();
        b.set_recorder(2, t(2));
        b.record(t(2), Some(TraceId(20)), 2, EventKind::Available);
        b.count(Counter::BrokerPublishes, 1);
        b.gauge_add(Gauge::NicBacklogUs, -3);
        b.sample(t(5));

        let m = TraceCollector::merged([a, b]);
        let order: Vec<u64> = m.events().map(|e| e.trace.unwrap().0).collect();
        assert_eq!(order, vec![10, 20, 11], "canonical (at, lane, seq) order");
        assert_eq!(m.counter(Counter::BrokerPublishes), 3);
        assert_eq!(m.gauge(Gauge::NicBacklogUs), 4, "7 then -3 in key order");
        assert_eq!(m.samples().len(), 1, "same-instant snapshots fuse");
        assert_eq!(m.samples()[0].counter(Counter::BrokerPublishes), 3);
        assert_eq!(m.samples()[0].gauge(Gauge::NicBacklogUs), 4);
    }

    #[test]
    fn with_trace_is_noop_without_service() {
        let mut sim = simcore::Simulation::new(1);
        let probe = sim.add_actor(simcore::FnActor(
            |_m: simcore::Payload, ctx: &mut Context| {
                with_trace(ctx, |tr, now| {
                    tr.record(now, None, 0, EventKind::PublishBegin);
                });
            },
        ));
        sim.schedule(simcore::SimDuration::ZERO, probe, Box::new(()));
        sim.run_until(SimTime::from_secs(1));
        // No collector registered: nothing to observe, nothing panicked.
        assert!(sim.service::<TraceCollector>().is_none());
    }
}
