//! Trace events, counters, and gauges.

use simcore::SimTime;

/// Causal identity of one traced message. For probe traffic this wraps
/// the `telemetry::ProbeId` number, so trace spans and RTT records key
/// on the same id and can be cross-checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// What happened at one instant of a message's life.
///
/// Lifecycle variants mirror the four `RttCollector` instants of fig 15;
/// hop variants record where the message was in between. All payloads
/// are plain numbers so events are `Copy` and the ring buffer never
/// allocates per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The application called publish/INSERT (`before_sending`).
    PublishBegin,
    /// The synchronous send returned (`after_sending`).
    PublishEnd,
    /// The middleware made the message available (`before_receiving`).
    Available,
    /// The receiving application has the message (`after_receiving`).
    Delivered,
    /// A frame entered a network connection.
    NetSend {
        /// Connection index.
        conn: u64,
        /// Frame size in bytes.
        bytes: u32,
    },
    /// A frame left a network connection at the receiver.
    NetDeliver {
        /// Connection index.
        conn: u64,
    },
    /// A frame was dropped (UDP loss).
    NetDrop {
        /// Connection index.
        conn: u64,
    },
    /// A broker accepted a publish or peer forward.
    BrokerRecv {
        /// Broker index within the network.
        broker: u32,
    },
    /// Selector evaluation outcome across a broker's subscriptions.
    SelectorMatch {
        /// Subscriptions whose selector matched.
        matched: u32,
        /// Subscriptions evaluated but not matched.
        missed: u32,
    },
    /// A broker fanned the message out to local subscribers.
    BrokerDeliver {
        /// Broker index.
        broker: u32,
        /// Local deliveries produced by this one message.
        fanout: u32,
    },
    /// A broker forwarded to peer brokers (DBN flood or routed).
    BrokerForward {
        /// Broker index.
        broker: u32,
        /// Peers the message was sent to.
        peers: u32,
    },
    /// A lost frame was retransmitted (UDP gap recovery).
    Retransmit {
        /// Retry attempt number.
        attempt: u32,
    },
    /// A tuple was inserted into R-GMA producer storage.
    StorageInsert {
        /// Rows in the table after the insert.
        rows: u32,
    },
    /// A continuous SELECT matched the tuple for delivery.
    SelectMatch {
        /// Consumers the tuple was streamed to.
        consumers: u32,
    },
    /// The secondary producer buffered a tuple into its batch.
    BatchEnqueue {
        /// Tuples in the batch after the enqueue.
        occupancy: u32,
    },
    /// The secondary producer flushed its batch.
    BatchFlush {
        /// Tuples flushed.
        tuples: u32,
    },
    /// A simulated garbage-collection pause charged to a process.
    GcPause {
        /// Pause length in microseconds.
        micros: u32,
    },
}

impl EventKind {
    /// Stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PublishBegin => "publish_begin",
            EventKind::PublishEnd => "publish_end",
            EventKind::Available => "available",
            EventKind::Delivered => "delivered",
            EventKind::NetSend { .. } => "net_send",
            EventKind::NetDeliver { .. } => "net_deliver",
            EventKind::NetDrop { .. } => "net_drop",
            EventKind::BrokerRecv { .. } => "broker_recv",
            EventKind::SelectorMatch { .. } => "selector_match",
            EventKind::BrokerDeliver { .. } => "broker_deliver",
            EventKind::BrokerForward { .. } => "broker_forward",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::StorageInsert { .. } => "storage_insert",
            EventKind::SelectMatch { .. } => "select_match",
            EventKind::BatchEnqueue { .. } => "batch_enqueue",
            EventKind::BatchFlush { .. } => "batch_flush",
            EventKind::GcPause { .. } => "gc_pause",
        }
    }
}

/// One recorded instant. `actor` is the kernel actor index that emitted
/// the event; `trace` is `None` for anonymous infrastructure events
/// (e.g. fabric frames, which carry opaque payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant.
    pub at: SimTime,
    /// Causal id, when known at this layer.
    pub trace: Option<TraceId>,
    /// Emitting actor's slab index.
    pub actor: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Monotonic counters sampled into the unified resource log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Frames handed to the network fabric.
    NetFramesSent,
    /// Frames delivered by the fabric.
    NetFramesDelivered,
    /// Frames dropped by the fabric (UDP).
    NetDrops,
    /// Selector evaluations that matched.
    SelectorMatches,
    /// Selector evaluations that missed.
    SelectorMisses,
    /// Publishes accepted by brokers.
    BrokerPublishes,
    /// Local deliveries fanned out by brokers.
    BrokerDeliveries,
    /// Messages forwarded between brokers.
    BrokerForwards,
    /// Retransmissions (UDP gap recovery).
    Retries,
    /// Tuples stored by R-GMA producers.
    TuplesStored,
    /// Tuples streamed to consumers by continuous SELECTs.
    TuplesDelivered,
    /// Secondary-producer batch flushes.
    BatchFlushes,
    /// Simulated GC pauses.
    GcPauses,
    /// Fault events fired by the simfault driver.
    FaultsInjected,
    /// Frames/messages dropped by injected faults (link bursts,
    /// partitions, crashed brokers).
    FaultDrops,
    /// Requests rejected because of injected faults (stalled servlets).
    FaultRejections,
    /// Messages recovered by client-side fault handling (resync,
    /// republish, retry).
    FaultRecoveries,
}

/// Number of [`Counter`] slots.
pub const COUNTER_COUNT: usize = 17;

impl Counter {
    /// All counters, in slot order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::NetFramesSent,
        Counter::NetFramesDelivered,
        Counter::NetDrops,
        Counter::SelectorMatches,
        Counter::SelectorMisses,
        Counter::BrokerPublishes,
        Counter::BrokerDeliveries,
        Counter::BrokerForwards,
        Counter::Retries,
        Counter::TuplesStored,
        Counter::TuplesDelivered,
        Counter::BatchFlushes,
        Counter::GcPauses,
        Counter::FaultsInjected,
        Counter::FaultDrops,
        Counter::FaultRejections,
        Counter::FaultRecoveries,
    ];

    /// True for counters that only move when fault injection is active.
    /// Exporters omit these slots when every sample is zero, keeping
    /// no-fault trace exports byte-identical to pre-fault builds.
    pub fn fault_only(self) -> bool {
        matches!(
            self,
            Counter::FaultsInjected
                | Counter::FaultDrops
                | Counter::FaultRejections
                | Counter::FaultRecoveries
        )
    }

    /// Stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::NetFramesSent => "net_frames_sent",
            Counter::NetFramesDelivered => "net_frames_delivered",
            Counter::NetDrops => "net_drops",
            Counter::SelectorMatches => "selector_matches",
            Counter::SelectorMisses => "selector_misses",
            Counter::BrokerPublishes => "broker_publishes",
            Counter::BrokerDeliveries => "broker_deliveries",
            Counter::BrokerForwards => "broker_forwards",
            Counter::Retries => "retries",
            Counter::TuplesStored => "tuples_stored",
            Counter::TuplesDelivered => "tuples_delivered",
            Counter::BatchFlushes => "batch_flushes",
            Counter::GcPauses => "gc_pauses",
            Counter::FaultsInjected => "faults_injected",
            Counter::FaultDrops => "fault_drops",
            Counter::FaultRejections => "fault_rejections",
            Counter::FaultRecoveries => "fault_recoveries",
        }
    }
}

/// Instantaneous levels sampled into the unified resource log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Transmit backlog of the most recently used NIC, microseconds
    /// (the model's only queue: the per-node FIFO transmit server).
    NicBacklogUs,
    /// Tuples currently buffered in the secondary-producer batch.
    BatchOccupancy,
}

/// Number of [`Gauge`] slots.
pub const GAUGE_COUNT: usize = 2;

impl Gauge {
    /// All gauges, in slot order.
    pub const ALL: [Gauge; GAUGE_COUNT] = [Gauge::NicBacklogUs, Gauge::BatchOccupancy];

    /// Stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::NicBacklogUs => "nic_backlog_us",
            Gauge::BatchOccupancy => "batch_occupancy",
        }
    }
}
