//! Byte-deterministic trace exporters: JSONL and Chrome `trace_event`.
//!
//! Both formats are assembled with plain string formatting over data
//! that is already deterministically ordered (the event ring is in
//! simulation-time order; summaries use `BTreeMap`), so two runs with
//! the same seed produce byte-identical artifacts. No wall-clock value
//! ever enters an export.

use crate::collector::TraceCollector;
use crate::event::{Counter, EventKind, Gauge};
use crate::summary::TraceSummary;
use simcore::SimTime;
use std::fmt::Write;

/// One row of the machine-level resource log (vmstat mirror). The
/// caller converts `simos::VmSample`s into these, keeping this crate
/// free of higher-layer dependencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceRow {
    /// Sample instant.
    pub at: SimTime,
    /// Node index.
    pub node: u64,
    /// CPU idle fraction over the last interval.
    pub idle: f64,
    /// Memory consumption in bytes.
    pub mem_bytes: u64,
}

fn kind_args(out: &mut String, kind: EventKind) {
    match kind {
        EventKind::PublishBegin
        | EventKind::PublishEnd
        | EventKind::Available
        | EventKind::Delivered => {}
        EventKind::NetSend { conn, bytes } => {
            write!(out, ",\"conn\":{conn},\"bytes\":{bytes}").unwrap()
        }
        EventKind::NetDeliver { conn } | EventKind::NetDrop { conn } => {
            write!(out, ",\"conn\":{conn}").unwrap()
        }
        EventKind::BrokerRecv { broker } => write!(out, ",\"broker\":{broker}").unwrap(),
        EventKind::SelectorMatch { matched, missed } => {
            write!(out, ",\"matched\":{matched},\"missed\":{missed}").unwrap()
        }
        EventKind::BrokerDeliver { broker, fanout } => {
            write!(out, ",\"broker\":{broker},\"fanout\":{fanout}").unwrap()
        }
        EventKind::BrokerForward { broker, peers } => {
            write!(out, ",\"broker\":{broker},\"peers\":{peers}").unwrap()
        }
        EventKind::Retransmit { attempt } => write!(out, ",\"attempt\":{attempt}").unwrap(),
        EventKind::StorageInsert { rows } => write!(out, ",\"rows\":{rows}").unwrap(),
        EventKind::SelectMatch { consumers } => write!(out, ",\"consumers\":{consumers}").unwrap(),
        EventKind::BatchEnqueue { occupancy } => write!(out, ",\"occupancy\":{occupancy}").unwrap(),
        EventKind::BatchFlush { tuples } => write!(out, ",\"tuples\":{tuples}").unwrap(),
        EventKind::GcPause { micros } => write!(out, ",\"micros\":{micros}").unwrap(),
    }
}

/// True if any sample shows movement on a fault-only counter. When not,
/// the fault slots are omitted from exports so no-fault runs stay
/// byte-identical to builds that predate fault injection.
fn faults_active(tr: &TraceCollector) -> bool {
    tr.samples().iter().any(|s| {
        Counter::ALL
            .iter()
            .any(|c| c.fault_only() && s.counter(*c) > 0)
    })
}

/// Export the full trace as JSON Lines: every event, every counter
/// sample, and (merged in time order) the machine resource rows —
/// the "one unified resource log".
pub fn jsonl(tr: &TraceCollector, resources: &[ResourceRow]) -> String {
    let mut out = String::new();
    let with_faults = faults_active(tr);
    // Events first (time-ordered by construction).
    for ev in tr.events() {
        write!(out, "{{\"type\":\"event\",\"at_us\":{}", ev.at.as_micros()).unwrap();
        match ev.trace {
            Some(id) => write!(out, ",\"trace\":{}", id.0).unwrap(),
            None => out.push_str(",\"trace\":null"),
        }
        write!(
            out,
            ",\"actor\":{},\"kind\":\"{}\"",
            ev.actor,
            ev.kind.name()
        )
        .unwrap();
        kind_args(&mut out, ev.kind);
        out.push_str("}\n");
    }
    // Unified resource log: counter samples and vmstat rows, merged by
    // instant (counters before vmstat on ties, then node order).
    let mut ci = tr.samples().iter().peekable();
    let mut ri = resources.iter().peekable();
    loop {
        let take_counter = match (ci.peek(), ri.peek()) {
            (Some(c), Some(r)) => c.at <= r.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_counter {
            let s = ci.next().unwrap();
            write!(
                out,
                "{{\"type\":\"counters\",\"at_us\":{}",
                s.at.as_micros()
            )
            .unwrap();
            for c in Counter::ALL {
                if c.fault_only() && !with_faults {
                    continue;
                }
                write!(out, ",\"{}\":{}", c.name(), s.counter(c)).unwrap();
            }
            for g in Gauge::ALL {
                write!(out, ",\"{}\":{}", g.name(), s.gauge(g)).unwrap();
            }
            out.push_str("}\n");
        } else {
            let r = ri.next().unwrap();
            writeln!(
                out,
                "{{\"type\":\"vmstat\",\"at_us\":{},\"node\":{},\"idle\":{},\"mem_bytes\":{}}}",
                r.at.as_micros(),
                r.node,
                r.idle,
                r.mem_bytes
            )
            .unwrap();
        }
    }
    out
}

/// Export the trace in Chrome `trace_event` JSON (open in Perfetto or
/// `chrome://tracing`). Each traced message gets its own track (tid =
/// trace id + 1); its reconstructed PRT/PT/SRT phases are duration
/// events and its hops are instants. Counter samples become `ph:"C"`
/// counter tracks. Anonymous infrastructure events share track 0.
pub fn chrome_trace(tr: &TraceCollector) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"gridmon-sim\"}}",
    );
    for ev in tr.events() {
        let tid = ev.trace.map_or(0, |t| t.0 + 1);
        write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"hop\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":0,\"tid\":{tid},\"args\":{{\"actor\":{}",
            ev.kind.name(),
            ev.at.as_micros(),
            ev.actor
        )
        .unwrap();
        kind_args(&mut out, ev.kind);
        out.push_str("}}");
    }
    let summary = TraceSummary::from_collector(tr);
    for (id, b) in &summary.probes {
        let tid = id.0 + 1;
        let phases = [
            ("PRT", b.publish_begin, b.prt()),
            ("PT", b.publish_end, b.pt()),
            ("SRT", b.available, b.srt()),
        ];
        for (name, start, dur) in phases {
            if let (Some(start), Some(dur)) = (start, dur) {
                write!(
                    out,
                    ",\n{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{dur},\"pid\":0,\"tid\":{tid}}}",
                    start.as_micros()
                )
                .unwrap();
            }
        }
    }
    let with_faults = faults_active(tr);
    for s in tr.samples() {
        for c in Counter::ALL {
            if c.fault_only() && !with_faults {
                continue;
            }
            write!(
                out,
                ",\n{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"value\":{}}}}}",
                c.name(),
                s.at.as_micros(),
                s.counter(c)
            )
            .unwrap();
        }
        for g in Gauge::ALL {
            write!(
                out,
                ",\n{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"value\":{}}}}}",
                g.name(),
                s.at.as_micros(),
                s.gauge(g)
            )
            .unwrap();
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceId;

    fn sample_collector() -> TraceCollector {
        let mut c = TraceCollector::new();
        let id = Some(TraceId(3));
        c.record(SimTime::from_millis(1), id, 1, EventKind::PublishBegin);
        c.record(SimTime::from_millis(2), id, 1, EventKind::PublishEnd);
        c.record(
            SimTime::from_millis(3),
            None,
            9,
            EventKind::NetSend {
                conn: 4,
                bytes: 512,
            },
        );
        c.record(SimTime::from_millis(5), id, 2, EventKind::Available);
        c.record(SimTime::from_millis(6), id, 2, EventKind::Delivered);
        c.count(Counter::NetFramesSent, 1);
        c.gauge_set(Gauge::NicBacklogUs, 1);
        c.sample(SimTime::from_secs(1));
        c
    }

    #[test]
    fn jsonl_lines_are_parseable_objects() {
        let c = sample_collector();
        let rows = [ResourceRow {
            at: SimTime::from_secs(1),
            node: 0,
            idle: 0.5,
            mem_bytes: 1024,
        }];
        let text = jsonl(&c, &rows);
        assert_eq!(text.lines().count(), 5 + 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // Balanced quotes and braces are a cheap JSON sanity check.
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        }
        assert!(text.contains("\"kind\":\"net_send\",\"conn\":4,\"bytes\":512"));
        assert!(text.contains("\"type\":\"vmstat\""));
        assert!(text.contains("\"net_frames_sent\":1"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        let a = jsonl(&sample_collector(), &[]);
        let b = jsonl(&sample_collector(), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn chrome_trace_has_phases_and_counters() {
        let text = chrome_trace(&sample_collector());
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"name\":\"PRT\""));
        assert!(text.contains("\"name\":\"PT\""));
        assert!(text.contains("\"name\":\"SRT\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"tid\":4"), "trace 3 maps to tid 4");
        // Braces balance (no trailing-comma style corruption).
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces"
        );
    }
}
