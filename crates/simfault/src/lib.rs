#![warn(missing_docs)]
//! # simfault — scripted, virtual-time fault injection
//!
//! The fabric and the middlewares model the *benign* Hydra testbed; this
//! crate adds the misfortunes the paper's systems were designed to
//! survive. A [`FaultSchedule`] is a list of timed events — link-loss
//! bursts, network partitions, broker crash/restart, R-GMA servlet
//! stalls, node slowdowns — replayed by a [`FaultDriver`] actor against a
//! [`FaultInjector`] kernel service. All randomness comes from a private
//! [`SimRng`] stream derived from the experiment seed, so the same seed
//! produces the same faults and byte-identical traces.
//!
//! The injector is *optional*, exactly like `simtrace::TraceCollector`:
//! when no schedule is installed the service is simply absent, every
//! hook (`should_drop_frame`, `node_stalled`, `with_faults`) no-ops, and
//! a no-fault run is byte-identical to a build without this crate.

use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime};
use simos::{NodeId, OsModel};
use std::collections::HashMap;

/// Seed-stream tag for the injector's private draws; keeps fault draws
/// off the kernel RNG so an empty schedule perturbs nothing.
pub const FAULT_RNG_STREAM: u64 = 0xFA17_57A6;

/// splitmix64 finalizer: a stateless bijective mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless burst draw: uniform in [0, 1) from (seed, from, to, n).
///
/// Burst loss draws must not depend on the global interleaving of frames
/// — under sharding each shard sees only its own slice of the traffic,
/// so a shared RNG stream consumed in arrival order would diverge from
/// the serial run. Instead each (from, to) link keys its own draw
/// sequence: the n-th frame on a link gets the same verdict no matter
/// which shard evaluates it or what other links are doing.
#[inline]
fn link_draw(seed: u64, from: NodeId, to: NodeId, n: u64) -> f64 {
    let h =
        mix(mix(mix(seed ^ FAULT_RNG_STREAM) ^ (u64::from(from.0) << 16 | u64::from(to.0))) ^ n);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// One kind of injected misfortune.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Elevated random frame loss on the fabric for a window — the
    /// flaky-switch / half-seated-cable case.
    LinkLossBurst {
        /// How long the burst lasts.
        duration: SimDuration,
        /// Per-frame drop probability while the burst is active.
        loss_prob: f64,
        /// Restrict the burst to frames touching this node
        /// (`None` = every link).
        node: Option<NodeId>,
    },
    /// Network partition: frames crossing the boundary between `group`
    /// and the rest of the world are dropped for `duration`.
    Partition {
        /// How long the partition lasts.
        duration: SimDuration,
        /// Nodes on one side of the cut.
        group: Vec<NodeId>,
    },
    /// Kill a Narada broker JVM: connections die, volatile state is
    /// lost, in-flight deliveries vanish.
    BrokerCrash {
        /// Broker index (deployment order).
        broker: usize,
    },
    /// Restart a previously crashed broker (fresh accept loop, empty
    /// matching engine).
    BrokerRestart {
        /// Broker index (deployment order).
        broker: usize,
    },
    /// Restart the R-GMA registry servlet: the soft-state directory is
    /// wiped and must be repopulated by producer/consumer re-registration.
    RegistryRestart,
    /// An R-GMA servlet node stops accepting HTTP work (Tomcat GC pause
    /// or thread-pool exhaustion): requests get 503 for `duration`.
    ServletStall {
        /// The stalled node.
        node: NodeId,
        /// How long the stall lasts.
        duration: SimDuration,
    },
    /// CPU slowdown: every cost executed on `node` is scaled by `factor`
    /// for `duration` (competing batch job / thermal throttling).
    NodeSlowdown {
        /// The slowed node.
        node: NodeId,
        /// How long the slowdown lasts.
        duration: SimDuration,
        /// Cost multiplier (> 1 slows the node down).
        factor: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A scripted fault scenario: events in schedule order. Empty schedules
/// are the common case and install nothing at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The timed fault events.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: add a fault at an absolute instant.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Canonical named scenarios for `repro --faults <name>`. The times
    /// are fixed so two invocations replay identically; they target the
    /// paper experiments' publishing window.
    pub fn scenario(name: &str) -> Option<FaultSchedule> {
        let t = SimTime::from_secs;
        let d = SimDuration::from_secs;
        Some(match name {
            "broker-crash" => FaultSchedule::new()
                .at(t(120), FaultKind::BrokerCrash { broker: 0 })
                .at(t(150), FaultKind::BrokerRestart { broker: 0 }),
            "registry-restart" => FaultSchedule::new().at(t(120), FaultKind::RegistryRestart),
            "link-burst" => FaultSchedule::new().at(
                t(120),
                FaultKind::LinkLossBurst {
                    duration: d(30),
                    loss_prob: 0.25,
                    node: None,
                },
            ),
            "partition" => FaultSchedule::new().at(
                t(120),
                FaultKind::Partition {
                    duration: d(20),
                    group: vec![NodeId(0)],
                },
            ),
            "servlet-stall" => FaultSchedule::new().at(
                t(120),
                FaultKind::ServletStall {
                    node: NodeId(0),
                    duration: d(20),
                },
            ),
            "slowdown" => FaultSchedule::new().at(
                t(120),
                FaultKind::NodeSlowdown {
                    node: NodeId(0),
                    duration: d(60),
                    factor: 4.0,
                },
            ),
            "chaos" => FaultSchedule::new()
                .at(
                    t(90),
                    FaultKind::LinkLossBurst {
                        duration: d(15),
                        loss_prob: 0.15,
                        node: None,
                    },
                )
                .at(t(120), FaultKind::BrokerCrash { broker: 0 })
                .at(t(140), FaultKind::BrokerRestart { broker: 0 })
                .at(t(150), FaultKind::RegistryRestart)
                .at(
                    t(170),
                    FaultKind::NodeSlowdown {
                        node: NodeId(0),
                        duration: d(30),
                        factor: 3.0,
                    },
                ),
            _ => return None,
        })
    }

    /// Names accepted by [`FaultSchedule::scenario`].
    pub const SCENARIOS: &'static [&'static str] = &[
        "broker-crash",
        "registry-restart",
        "link-burst",
        "partition",
        "servlet-stall",
        "slowdown",
        "chaos",
    ];
}

/// Graceful-degradation accounting: what the faults did and what the
/// clients got back. All counters are monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events fired by the driver.
    pub injected: u64,
    /// Frames dropped by link-loss bursts.
    pub link_drops: u64,
    /// Frames dropped by partitions.
    pub partition_drops: u64,
    /// Messages discarded because a crashed broker was unreachable.
    pub crash_drops: u64,
    /// HTTP requests rejected (503) by stalled servlets.
    pub stall_rejections: u64,
    /// Client reconnect attempts (each backoff try counts).
    pub reconnect_attempts: u64,
    /// Connections successfully re-established.
    pub reconnects: u64,
    /// Publishes buffered while offline and sent after reconnect.
    pub delayed: u64,
    /// In-flight publishes re-sent over a fresh connection.
    pub republished: u64,
    /// Messages recovered from broker stable storage via resync.
    pub recovered: u64,
    /// R-GMA HTTP operations retried after a 5xx.
    pub http_retries: u64,
    /// R-GMA soft-state re-registrations after a registry wipe.
    pub reregistrations: u64,
}

impl FaultStats {
    /// Merge per-shard fault accounting. Every counter is incremented by
    /// exactly one shard per underlying event (frame drops on the sender's
    /// shard, recovery counters on the acting client's shard, `injected`
    /// on the accounting-primary replica of the driver), so the merge is a
    /// plain field-wise sum and merged-of-one is the identity.
    pub fn merged(parts: impl IntoIterator<Item = FaultStats>) -> FaultStats {
        let mut out = FaultStats::default();
        for p in parts {
            out.injected += p.injected;
            out.link_drops += p.link_drops;
            out.partition_drops += p.partition_drops;
            out.crash_drops += p.crash_drops;
            out.stall_rejections += p.stall_rejections;
            out.reconnect_attempts += p.reconnect_attempts;
            out.reconnects += p.reconnects;
            out.delayed += p.delayed;
            out.republished += p.republished;
            out.recovered += p.recovered;
            out.http_retries += p.http_retries;
            out.reregistrations += p.reregistrations;
        }
        out
    }

    /// Per-cause rows for `telemetry`-style degradation tables, in a
    /// stable order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("faults injected", self.injected),
            ("dropped: link burst", self.link_drops),
            ("dropped: partition", self.partition_drops),
            ("dropped: broker crash", self.crash_drops),
            ("rejected: servlet stall", self.stall_rejections),
            ("reconnect attempts", self.reconnect_attempts),
            ("reconnects", self.reconnects),
            ("delayed (offline buffer)", self.delayed),
            ("republished after reconnect", self.republished),
            ("recovered from stable store", self.recovered),
            ("HTTP retries", self.http_retries),
            ("soft-state re-registrations", self.reregistrations),
        ]
    }
}

/// The fault-injection kernel service. Registered only when a schedule
/// is non-empty; holds the live fault windows and the degradation
/// counters, and owns a private RNG so fault draws never perturb the
/// kernel RNG stream.
pub struct FaultInjector {
    /// Degradation accounting, mutated by the driver and by middleware
    /// recovery paths (via [`with_faults`]).
    pub stats: FaultStats,
    seed: u64,
    burst_seqs: HashMap<(NodeId, NodeId), u64>,
    burst_until: SimTime,
    burst_prob: f64,
    burst_node: Option<NodeId>,
    partitions: Vec<(Vec<NodeId>, SimTime)>,
    stalled: HashMap<NodeId, SimTime>,
}

impl FaultInjector {
    /// New injector for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            stats: FaultStats::default(),
            seed,
            burst_seqs: HashMap::new(),
            burst_until: SimTime::ZERO,
            burst_prob: 0.0,
            burst_node: None,
            partitions: Vec::new(),
            stalled: HashMap::new(),
        }
    }

    /// Open a link-loss window.
    pub fn begin_burst(&mut self, until: SimTime, loss_prob: f64, node: Option<NodeId>) {
        self.burst_until = until;
        self.burst_prob = loss_prob;
        self.burst_node = node;
    }

    /// Open a partition window.
    pub fn begin_partition(&mut self, group: Vec<NodeId>, until: SimTime) {
        self.partitions.push((group, until));
    }

    /// Mark a node's servlets stalled until `until`.
    pub fn begin_stall(&mut self, node: NodeId, until: SimTime) {
        self.stalled.insert(node, until);
    }

    /// Should a frame from `from` to `to` be dropped by an active fault?
    /// Burst verdicts come from per-link stateless draws (see
    /// [`link_draw`]) only while a burst window is open, so quiet periods
    /// consume no randomness and sharding cannot reorder the draws.
    pub fn frame_fault(&mut self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        self.partitions.retain(|(_, until)| *until > now);
        for (group, _) in &self.partitions {
            if group.contains(&from) != group.contains(&to) {
                self.stats.partition_drops += 1;
                return true;
            }
        }
        if now < self.burst_until {
            let hit = match self.burst_node {
                Some(n) => n == from || n == to,
                None => true,
            };
            if hit {
                let n = self.burst_seqs.entry((from, to)).or_insert(0);
                let draw = link_draw(self.seed, from, to, *n);
                *n += 1;
                if draw < self.burst_prob {
                    self.stats.link_drops += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Is `node` inside a servlet-stall window right now?
    pub fn is_stalled(&self, now: SimTime, node: NodeId) -> bool {
        self.stalled.get(&node).is_some_and(|until| now < *until)
    }
}

/// Run `f` against the fault injector if one is installed; no-op (and
/// zero-cost beyond a map probe) otherwise. Mirrors
/// `simtrace::with_trace`.
#[inline]
pub fn with_faults<F: FnOnce(&mut FaultInjector, SimTime)>(ctx: &mut Context<'_>, f: F) {
    let now = ctx.now();
    if let Some(inj) = ctx.try_service_mut::<FaultInjector>() {
        f(inj, now);
    }
}

/// Fabric hook: should this frame be dropped by an active fault window?
/// Always `false` when no injector is installed.
#[inline]
pub fn should_drop_frame(ctx: &mut Context<'_>, from: NodeId, to: NodeId) -> bool {
    let now = ctx.now();
    match ctx.try_service_mut::<FaultInjector>() {
        Some(inj) => inj.frame_fault(now, from, to),
        None => false,
    }
}

/// Servlet hook: is this node inside a stall window? Always `false`
/// when no injector is installed.
#[inline]
pub fn node_stalled(ctx: &mut Context<'_>, node: NodeId) -> bool {
    let now = ctx.now();
    match ctx.try_service_mut::<FaultInjector>() {
        Some(inj) => inj.is_stalled(now, node),
        None => false,
    }
}

/// Process-kill signals delivered to middleware actors by the driver.
/// Actors that model crashable processes handle this payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSignal {
    /// The target broker's JVM dies now.
    BrokerCrash,
    /// The target broker's JVM comes back up.
    BrokerRestart,
    /// The R-GMA registry servlet restarts (soft state wiped).
    RegistryRestart,
}

/// The actor that replays a [`FaultSchedule`]: arms one timer per event
/// and, when it fires, opens injector windows, scales node speed, or
/// signals broker/registry actors.
pub struct FaultDriver {
    schedule: FaultSchedule,
    brokers: Vec<ActorId>,
    registry: Option<ActorId>,
}

struct FaultTick(usize);

impl FaultDriver {
    /// New driver. `brokers` are Narada broker actors in deployment
    /// order; `registry` is the R-GMA registry actor if the experiment
    /// has one. Events naming a missing target are ignored, so one
    /// schedule can drive either middleware.
    pub fn new(schedule: FaultSchedule, brokers: Vec<ActorId>, registry: Option<ActorId>) -> Self {
        FaultDriver {
            schedule,
            brokers,
            registry,
        }
    }
}

impl Actor for FaultDriver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (ix, ev) in self.schedule.events.iter().enumerate() {
            ctx.timer(ev.at.saturating_since(ctx.now()), FaultTick(ix));
        }
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let Ok(tick) = msg.downcast::<FaultTick>() else {
            return;
        };
        let ev = self.schedule.events[tick.0].clone();
        // The driver is replicated on every shard (fault windows must open
        // everywhere), but each firing is one logical event: only the
        // accounting-primary replica counts it.
        let primary = ctx.accounting_primary();
        with_faults(ctx, |inj, _| {
            if primary {
                inj.stats.injected += 1;
            }
        });
        let now = ctx.now();
        match ev.kind {
            FaultKind::LinkLossBurst {
                duration,
                loss_prob,
                node,
            } => {
                with_faults(ctx, |inj, _| {
                    inj.begin_burst(now + duration, loss_prob, node)
                });
            }
            FaultKind::Partition { duration, group } => {
                with_faults(ctx, |inj, _| inj.begin_partition(group, now + duration));
            }
            FaultKind::BrokerCrash { broker } => {
                if let Some(&id) = self.brokers.get(broker) {
                    ctx.send_now(id, FaultSignal::BrokerCrash);
                }
            }
            FaultKind::BrokerRestart { broker } => {
                if let Some(&id) = self.brokers.get(broker) {
                    ctx.send_now(id, FaultSignal::BrokerRestart);
                }
            }
            FaultKind::RegistryRestart => {
                if let Some(id) = self.registry {
                    ctx.send_now(id, FaultSignal::RegistryRestart);
                }
            }
            FaultKind::ServletStall { node, duration } => {
                with_faults(ctx, |inj, _| inj.begin_stall(node, now + duration));
            }
            FaultKind::NodeSlowdown {
                node,
                duration,
                factor,
            } => {
                if let Some(os) = ctx.try_service_mut::<OsModel>() {
                    os.set_slowdown(node, now + duration, factor);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "fault-driver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_default() {
        assert!(FaultSchedule::new().is_empty());
        assert_eq!(FaultSchedule::new(), FaultSchedule::default());
    }

    #[test]
    fn scenarios_resolve_and_unknown_is_none() {
        for name in FaultSchedule::SCENARIOS {
            let s = FaultSchedule::scenario(name).expect("known scenario");
            assert!(!s.is_empty(), "{name} is empty");
        }
        assert!(FaultSchedule::scenario("nope").is_none());
    }

    #[test]
    fn partition_drops_only_cross_boundary_frames() {
        let mut inj = FaultInjector::new(1);
        inj.begin_partition(vec![NodeId(0), NodeId(1)], SimTime::from_secs(10));
        let now = SimTime::from_secs(1);
        assert!(inj.frame_fault(now, NodeId(0), NodeId(2)));
        assert!(inj.frame_fault(now, NodeId(3), NodeId(1)));
        assert!(!inj.frame_fault(now, NodeId(0), NodeId(1)));
        assert!(!inj.frame_fault(now, NodeId(2), NodeId(3)));
        // Window expiry: after `until`, nothing is dropped.
        let later = SimTime::from_secs(11);
        assert!(!inj.frame_fault(later, NodeId(0), NodeId(2)));
        assert_eq!(inj.stats.partition_drops, 2);
    }

    #[test]
    fn burst_respects_window_node_filter_and_probability() {
        let mut inj = FaultInjector::new(2);
        inj.begin_burst(SimTime::from_secs(5), 1.0, Some(NodeId(7)));
        let now = SimTime::from_secs(1);
        assert!(inj.frame_fault(now, NodeId(7), NodeId(1)));
        assert!(inj.frame_fault(now, NodeId(1), NodeId(7)));
        assert!(!inj.frame_fault(now, NodeId(1), NodeId(2)));
        assert!(!inj.frame_fault(SimTime::from_secs(6), NodeId(7), NodeId(1)));
        assert_eq!(inj.stats.link_drops, 2);
        // prob 0 never drops even inside the window.
        let mut calm = FaultInjector::new(2);
        calm.begin_burst(SimTime::from_secs(5), 0.0, None);
        assert!(!calm.frame_fault(now, NodeId(0), NodeId(1)));
    }

    #[test]
    fn burst_draws_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            inj.begin_burst(SimTime::from_secs(100), 0.4, None);
            (0..64)
                .map(|i| inj.frame_fault(SimTime::from_secs(1), NodeId(i), NodeId(i + 1)))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn burst_draws_are_interleaving_invariant() {
        // Verdicts on link (0→1) must not change when traffic on an
        // unrelated link is interleaved — the shard-partition property.
        let now = SimTime::from_secs(1);
        let solo: Vec<bool> = {
            let mut inj = FaultInjector::new(42);
            inj.begin_burst(SimTime::from_secs(100), 0.4, None);
            (0..64)
                .map(|_| inj.frame_fault(now, NodeId(0), NodeId(1)))
                .collect()
        };
        let mixed: Vec<bool> = {
            let mut inj = FaultInjector::new(42);
            inj.begin_burst(SimTime::from_secs(100), 0.4, None);
            (0..64)
                .map(|_| {
                    inj.frame_fault(now, NodeId(8), NodeId(9));
                    inj.frame_fault(now, NodeId(0), NodeId(1))
                })
                .collect()
        };
        assert_eq!(solo, mixed);
    }

    #[test]
    fn split_injectors_merge_to_the_serial_stats() {
        // Two shards each evaluating a disjoint half of the links reach,
        // after the field-wise merge, the same stats as one serial
        // injector seeing everything.
        let now = SimTime::from_secs(1);
        let mk = || {
            let mut inj = FaultInjector::new(7);
            inj.begin_burst(SimTime::from_secs(100), 0.5, None);
            inj
        };
        let mut serial = mk();
        let (mut left, mut right) = (mk(), mk());
        for i in 0..32u16 {
            let (from, to) = (NodeId(i), NodeId(i + 100));
            let s = serial.frame_fault(now, from, to);
            let shard = if i % 2 == 0 { &mut left } else { &mut right };
            assert_eq!(shard.frame_fault(now, from, to), s);
        }
        let merged = FaultStats::merged([left.stats, right.stats]);
        assert_eq!(merged, serial.stats);
        assert_eq!(FaultStats::merged([serial.stats]), serial.stats);
    }

    #[test]
    fn stall_windows_expire() {
        let mut inj = FaultInjector::new(3);
        inj.begin_stall(NodeId(4), SimTime::from_secs(2));
        assert!(inj.is_stalled(SimTime::from_secs(1), NodeId(4)));
        assert!(!inj.is_stalled(SimTime::from_secs(1), NodeId(5)));
        assert!(!inj.is_stalled(SimTime::from_secs(3), NodeId(4)));
    }

    #[test]
    fn stats_rows_are_stable_and_complete() {
        let stats = FaultStats {
            injected: 1,
            link_drops: 2,
            partition_drops: 3,
            crash_drops: 4,
            stall_rejections: 5,
            reconnect_attempts: 6,
            reconnects: 7,
            delayed: 8,
            republished: 9,
            recovered: 10,
            http_retries: 11,
            reregistrations: 12,
        };
        let rows = stats.rows();
        assert_eq!(rows.len(), 12);
        let total: u64 = rows.iter().map(|(_, n)| n).sum();
        assert_eq!(total, (1..=12).sum::<u64>());
    }
}
