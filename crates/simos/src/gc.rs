//! JVM garbage-collection pauses.
//!
//! Both middlewares ran on HotSpot 1.4.2, whose collectors are
//! stop-the-world. Pauses are the dominant source of latency *tails* on
//! the testbed: they explain why only 99.8 % (not 100 %) of Narada
//! messages beat 100 ms (fig 8), and the multi-second upper percentiles
//! of the loaded R-GMA server (fig 12).
//!
//! Model: a pause occupies the node's CPU (all service work queues
//! behind it, exactly like stop-the-world). Minor collections are
//! frequent and short; full collections are rare and scale with live
//! heap. Intervals are exponentially distributed around configured
//! means.

use crate::node::{NodeId, OsModel, ProcessId};
use simcore::{Actor, Context, Payload, SimDuration};

/// GC behaviour of one JVM process.
#[derive(Debug, Clone)]
pub struct GcConfig {
    /// Mean time between minor (young-generation) collections.
    pub minor_interval: SimDuration,
    /// Fixed part of a minor pause.
    pub minor_pause_base: SimDuration,
    /// Minor pause per MiB of live heap.
    pub minor_pause_per_mb: SimDuration,
    /// Mean time between full collections (`None` = old generation never
    /// fills within a test, as for the mostly non-allocating broker).
    pub full_interval: Option<SimDuration>,
    /// Full pause per MiB of live heap.
    pub full_pause_per_mb: SimDuration,
}

impl GcConfig {
    /// The Narada broker JVM: steady connection buffers, low allocation
    /// rate — frequent small minor GCs, no full collections within a
    /// 30-minute test.
    pub fn narada_broker() -> Self {
        GcConfig {
            minor_interval: SimDuration::from_secs(20),
            minor_pause_base: SimDuration::from_millis(12),
            minor_pause_per_mb: SimDuration::from_micros(80),
            full_interval: None,
            full_pause_per_mb: SimDuration::from_millis(4),
        }
    }

    /// The R-GMA/Tomcat JVM: heavy allocation (SQL strings, tuples,
    /// buffers) — minor GCs plus periodic full collections whose pauses
    /// scale with the resident heap.
    pub fn rgma_server() -> Self {
        GcConfig {
            minor_interval: SimDuration::from_secs(12),
            minor_pause_base: SimDuration::from_millis(15),
            minor_pause_per_mb: SimDuration::from_micros(120),
            full_interval: Some(SimDuration::from_secs(90)),
            full_pause_per_mb: SimDuration::from_millis(4),
        }
    }
}

enum Tick {
    Minor,
    Full,
}

/// Actor injecting stop-the-world pauses for one process.
pub struct GcPauser {
    cfg: GcConfig,
    node: NodeId,
    proc: ProcessId,
}

impl GcPauser {
    /// Pauser for `proc` on `node`.
    pub fn new(cfg: GcConfig, node: NodeId, proc: ProcessId) -> Self {
        GcPauser { cfg, node, proc }
    }

    fn arm_minor(&self, ctx: &mut Context<'_>) {
        let d = ctx.rng().exp_duration(self.cfg.minor_interval);
        ctx.timer(d, Tick::Minor);
    }

    fn arm_full(&self, ctx: &mut Context<'_>) {
        if let Some(mean) = self.cfg.full_interval {
            let d = ctx.rng().exp_duration(mean);
            ctx.timer(d, Tick::Full);
        }
    }

    fn heap_mb(&self, ctx: &Context<'_>) -> f64 {
        ctx.service::<OsModel>()
            .mem(self.proc)
            .heap_used()
            .as_mib_f64()
    }
}

impl Actor for GcPauser {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.arm_minor(ctx);
        self.arm_full(ctx);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let Ok(tick) = msg.downcast::<Tick>() else {
            return;
        };
        let heap = self.heap_mb(ctx);
        let pause = match *tick {
            Tick::Minor => {
                self.arm_minor(ctx);
                // Minor pause scans the young generation: a small
                // heap-dependent fraction.
                self.cfg.minor_pause_base + self.cfg.minor_pause_per_mb.mul_f64(heap / 8.0)
            }
            Tick::Full => {
                self.arm_full(ctx);
                self.cfg.full_pause_per_mb.mul_f64(heap)
            }
        };
        // Stop-the-world: the pause occupies the CPU; all service work
        // queues behind it.
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (_, effective) = os.execute_metered(node, ctx.now(), pause);
            simprof::charge(ctx, simprof::Component::OsGc, effective);
        });
        let actor = ctx.self_id().index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                None,
                actor,
                simtrace::EventKind::GcPause {
                    micros: pause.as_micros().min(u64::from(u32::MAX)) as u32,
                },
            );
            tr.count(simtrace::Counter::GcPauses, 1);
        });
    }

    fn name(&self) -> &str {
        "gc-pauser"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Bytes;
    use crate::node::{NodeSpec, ProcessSpec};
    use simcore::{SimTime, Simulation};

    fn world(cfg: GcConfig, heap_mb: u64) -> Simulation {
        let mut sim = Simulation::new(3);
        let mut os = OsModel::new();
        let node = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        let proc = os.add_process(node, ProcessSpec::jvm_1g());
        os.alloc(proc, Bytes::mib(heap_mb)).unwrap();
        sim.add_service(os);
        sim.add_actor(GcPauser::new(cfg, node, proc));
        sim
    }

    fn busy_after(sim: &mut Simulation, secs: u64) -> f64 {
        sim.run_until(SimTime::from_secs(secs));
        let os = sim.service::<OsModel>().unwrap();
        os.node(crate::NodeId(0))
            .cpu
            .busy_integral(SimTime::from_secs(secs))
            .as_secs_f64()
    }

    #[test]
    fn minor_gcs_consume_a_little_cpu() {
        let mut sim = world(GcConfig::narada_broker(), 100);
        let busy = busy_after(&mut sim, 600);
        // ~30 minor GCs in 10 min at ~13ms each ≈ 0.4 s, well under 1 %.
        assert!(busy > 0.05, "some GC work happened: {busy}");
        assert!(busy < 6.0, "but far from dominating: {busy}");
    }

    #[test]
    fn full_gcs_scale_with_heap() {
        let small = busy_after(&mut world(GcConfig::rgma_server(), 50), 600);
        let large = busy_after(&mut world(GcConfig::rgma_server(), 500), 600);
        assert!(
            large > small * 2.0,
            "bigger heap, longer pauses: {small} vs {large}"
        );
    }

    #[test]
    fn narada_profile_never_runs_full_gc() {
        let cfg = GcConfig::narada_broker();
        assert!(cfg.full_interval.is_none());
    }
}
