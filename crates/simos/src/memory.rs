//! Process memory model: JVM-style heap cap plus native memory for thread
//! stacks.
//!
//! The paper's scalability limits are memory artifacts: a single Narada
//! broker "ran out of memory to create new threads" near 4000 connections,
//! and one R-GMA server near 800. Both middlewares used thread-per-
//! connection JVMs with `-Xmx1024m` on 2 GB nodes, so the binding
//! constraint is *native* memory (thread stacks) on top of the reserved
//! heap. We model both pools explicitly and surface allocation failures as
//! typed errors that the middlewares convert into connection refusals.

use std::fmt;

/// Bytes, as a plain u64 newtype for readability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Kibibytes.
    pub const fn kib(n: u64) -> Bytes {
        Bytes(n * 1024)
    }
    /// Mebibytes.
    pub const fn mib(n: u64) -> Bytes {
        Bytes(n * 1024 * 1024)
    }
    /// As mebibytes (fractional).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.1}MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.1}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomKind {
    /// Java heap exhausted (`-Xmx` reached).
    Heap,
    /// Native memory exhausted (cannot create new thread).
    Native,
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomError {
    /// Which pool ran out.
    pub kind: OomKind,
    /// Requested bytes.
    pub requested: Bytes,
    /// Bytes available in that pool at the time.
    pub available: Bytes,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of {} memory: requested {}, available {}",
            match self.kind {
                OomKind::Heap => "heap",
                OomKind::Native => "native",
            },
            self.requested,
            self.available
        )
    }
}

impl std::error::Error for OomError {}

/// Memory accounting for one simulated process (a "JVM").
#[derive(Debug, Clone)]
pub struct ProcessMemory {
    heap_used: u64,
    heap_cap: u64,
    native_used: u64,
    native_cap: u64,
    stack_size: u64,
    /// Resident (touched) bytes per thread stack; reservations are mostly
    /// virtual on Linux, so `vmstat` sees only this fraction.
    stack_resident: u64,
    threads: u32,
    /// High-water marks, for the paper's "peak minus bottom" metric.
    heap_peak: u64,
    baseline: u64,
}

impl ProcessMemory {
    /// New process. `heap_cap` models `-Xmx`; `native_cap` is what is left
    /// of physical memory for thread stacks and JVM internals;
    /// `stack_size` is the per-thread stack reservation; `baseline` is the
    /// resident footprint of the idle process.
    pub fn new(heap_cap: Bytes, native_cap: Bytes, stack_size: Bytes, baseline: Bytes) -> Self {
        ProcessMemory {
            heap_used: baseline.0,
            heap_cap: heap_cap.0,
            native_used: 0,
            native_cap: native_cap.0,
            stack_size: stack_size.0,
            stack_resident: Bytes::kib(8).0.min(stack_size.0),
            threads: 0,
            heap_peak: baseline.0,
            baseline: baseline.0,
        }
    }

    /// Allocate heap bytes.
    pub fn alloc(&mut self, n: Bytes) -> Result<(), OomError> {
        if self.heap_used + n.0 > self.heap_cap {
            return Err(OomError {
                kind: OomKind::Heap,
                requested: n,
                available: Bytes(self.heap_cap - self.heap_used),
            });
        }
        self.heap_used += n.0;
        self.heap_peak = self.heap_peak.max(self.heap_used);
        Ok(())
    }

    /// Free heap bytes (saturating at the baseline footprint).
    pub fn free(&mut self, n: Bytes) {
        self.heap_used = self.heap_used.saturating_sub(n.0).max(self.baseline);
    }

    /// Create a thread: reserves one stack from native memory.
    pub fn spawn_thread(&mut self) -> Result<(), OomError> {
        if self.native_used + self.stack_size > self.native_cap {
            return Err(OomError {
                kind: OomKind::Native,
                requested: Bytes(self.stack_size),
                available: Bytes(self.native_cap - self.native_used),
            });
        }
        self.native_used += self.stack_size;
        self.threads += 1;
        Ok(())
    }

    /// Destroy a thread, releasing its stack.
    pub fn kill_thread(&mut self) {
        if self.threads > 0 {
            self.threads -= 1;
            self.native_used = self.native_used.saturating_sub(self.stack_size);
        }
    }

    /// Live threads created through this accounting.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Current total resident footprint: heap plus the *touched* part of
    /// thread stacks (reservations are virtual; `vmstat` never sees them).
    pub fn resident(&self) -> Bytes {
        Bytes(self.heap_used + u64::from(self.threads) * self.stack_resident)
    }

    /// Current heap usage.
    pub fn heap_used(&self) -> Bytes {
        Bytes(self.heap_used)
    }

    /// Peak heap usage observed.
    pub fn heap_peak(&self) -> Bytes {
        Bytes(self.heap_peak)
    }

    /// The paper's "memory consumption": peak heap minus idle baseline,
    /// plus resident stack pages.
    pub fn consumption(&self) -> Bytes {
        Bytes(self.heap_peak - self.baseline + u64::from(self.threads) * self.stack_resident)
    }

    /// How many more threads could be created before native OOM.
    pub fn thread_headroom(&self) -> u32 {
        if self.stack_size == 0 {
            return u32::MAX;
        }
        ((self.native_cap - self.native_used) / self.stack_size) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> ProcessMemory {
        ProcessMemory::new(
            Bytes::mib(1024),
            Bytes::mib(512),
            Bytes::kib(256),
            Bytes::mib(32),
        )
    }

    #[test]
    fn bytes_display_and_units() {
        assert_eq!(Bytes::kib(2).0, 2048);
        assert_eq!(Bytes::mib(1).0, 1 << 20);
        assert_eq!(format!("{}", Bytes(512)), "512B");
        assert_eq!(format!("{}", Bytes::kib(2)), "2.0KiB");
        assert_eq!(format!("{}", Bytes::mib(3)), "3.0MiB");
    }

    #[test]
    fn heap_alloc_free_and_peak() {
        let mut m = proc();
        m.alloc(Bytes::mib(100)).unwrap();
        assert_eq!(m.heap_used(), Bytes::mib(132));
        m.free(Bytes::mib(50));
        assert_eq!(m.heap_used(), Bytes::mib(82));
        assert_eq!(m.heap_peak(), Bytes::mib(132));
        // Free below baseline clamps.
        m.free(Bytes::mib(1000));
        assert_eq!(m.heap_used(), Bytes::mib(32));
    }

    #[test]
    fn heap_oom() {
        let mut m = proc();
        let err = m.alloc(Bytes::mib(2000)).unwrap_err();
        assert_eq!(err.kind, OomKind::Heap);
        assert!(err.to_string().contains("heap"));
    }

    #[test]
    fn thread_stacks_hit_native_oom() {
        let mut m = proc();
        // 512 MiB native / 256 KiB stacks = 2048 threads.
        assert_eq!(m.thread_headroom(), 2048);
        for _ in 0..2048 {
            m.spawn_thread().unwrap();
        }
        let err = m.spawn_thread().unwrap_err();
        assert_eq!(err.kind, OomKind::Native);
        assert_eq!(m.threads(), 2048);
        m.kill_thread();
        assert!(m.spawn_thread().is_ok());
    }

    #[test]
    fn consumption_counts_peak_delta_plus_stacks() {
        let mut m = proc();
        m.alloc(Bytes::mib(64)).unwrap();
        m.spawn_thread().unwrap();
        // 64 MiB heap delta + 8 KiB resident stack (reservation is virtual).
        assert_eq!(m.consumption(), Bytes(64 * 1024 * 1024 + 8 * 1024));
        m.free(Bytes::mib(64));
        // Peak is sticky.
        assert_eq!(m.consumption(), Bytes(64 * 1024 * 1024 + 8 * 1024));
    }

    #[test]
    fn resident_tracks_both_pools() {
        let mut m = proc();
        m.spawn_thread().unwrap();
        assert_eq!(m.resident(), Bytes(32 * 1024 * 1024 + 8 * 1024));
    }
}
