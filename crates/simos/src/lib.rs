#![warn(missing_docs)]
//! # simos — node resource model
//!
//! Models the per-machine resources whose exhaustion drives the paper's
//! scalability results:
//!
//! * [`CpuServer`] — a single-core FIFO CPU with thread-count cost
//!   inflation (Pentium III 866 MHz behaviour under thousands of Java
//!   threads).
//! * [`ProcessMemory`] — JVM-style heap cap plus native memory for thread
//!   stacks; returns typed [`OomError`]s that middlewares convert into
//!   connection refusals ("ran out of memory to create new threads").
//! * [`OsModel`] — the cluster-wide service combining both.
//! * [`VmstatSampler`] / [`VmstatLog`] — the paper's `vmstat` measurement
//!   of CPU idle % and memory consumption (fig 6, fig 13).
//! * [`GcPauser`] — stop-the-world JVM collection pauses, the source of
//!   the latency tails (fig 8's 99.8 %, fig 12's multi-second p99).

pub mod cpu;
pub mod gc;
pub mod memory;
pub mod node;
pub mod vmstat;

pub use cpu::CpuServer;
pub use gc::{GcConfig, GcPauser};
pub use memory::{Bytes, OomError, OomKind, ProcessMemory};
pub use node::{Node, NodeId, NodeSpec, OsModel, ProcessId, ProcessSpec};
pub use vmstat::{VmSample, VmstatLog, VmstatSampler};
