//! A `vmstat`-style sampler: periodically records CPU idle % and memory
//! consumption per node, exactly the way the paper collected fig 6 and
//! fig 13.

use crate::node::{NodeId, OsModel};
use simcore::{Actor, Context, Payload, SimDuration, SimTime};

/// One sample for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSample {
    /// Sample instant.
    pub at: SimTime,
    /// Node sampled.
    pub node: NodeId,
    /// CPU idle fraction over the last interval, in `[0, 1]`.
    pub idle: f64,
    /// Memory consumption (paper metric: peak-minus-baseline + stacks) in bytes.
    pub mem_bytes: u64,
}

/// Accumulated samples, registered as a kernel service so experiments can
/// read them after the run.
#[derive(Default)]
pub struct VmstatLog {
    samples: Vec<VmSample>,
}

impl VmstatLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// All samples, in time order.
    pub fn samples(&self) -> &[VmSample] {
        &self.samples
    }

    /// Merge per-shard logs. Each shard's vmstat replica samples only
    /// its own nodes, so the union re-sorted by `(instant, node)` is
    /// exactly the row set (and order) a serial sampler writes — node
    /// order within one tick is ascending in both worlds.
    pub fn merged(parts: impl IntoIterator<Item = VmstatLog>) -> VmstatLog {
        let mut samples: Vec<VmSample> = parts.into_iter().flat_map(|p| p.samples).collect();
        samples.sort_by_key(|s| (s.at, s.node.0));
        VmstatLog { samples }
    }

    /// Samples for one node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &VmSample> {
        self.samples.iter().filter(move |s| s.node == node)
    }

    /// Mean CPU idle fraction for a node over all samples (the paper's
    /// "CPU idle time was calculated as the average during the tests").
    pub fn mean_idle(&self, node: NodeId) -> Option<f64> {
        self.mean_idle_between(node, SimTime::ZERO, SimTime::MAX)
    }

    /// Mean CPU idle restricted to a window (used to exclude the
    /// connection ramp from the reported figure, as the paper's
    /// steady-state measurement does).
    pub fn mean_idle_between(&self, node: NodeId, from: SimTime, to: SimTime) -> Option<f64> {
        let (sum, n) = self
            .for_node(node)
            .filter(|x| x.at >= from && x.at <= to)
            .fold((0.0, 0u32), |(s, n), x| (s + x.idle, n + 1));
        (n > 0).then(|| sum / f64::from(n))
    }

    /// Peak memory consumption for a node (paper: "difference between peak
    /// and bottom values"; our consumption metric already subtracts the
    /// baseline).
    pub fn peak_mem(&self, node: NodeId) -> Option<u64> {
        self.for_node(node).map(|s| s.mem_bytes).max()
    }
}

/// Actor that samples every `interval`.
pub struct VmstatSampler {
    interval: SimDuration,
    nodes: Vec<NodeId>,
    last_busy: Vec<SimDuration>,
    last_at: SimTime,
}

struct Tick;

/// Synthetic metric-op lane for one node's vmstat gauges
/// (`base | node id`). High bit set so it can never collide with a real
/// actor lane (actor indices stay far below 2^31), and sorts after actor
/// lanes at the same instant — gauge levels land before the snapshot.
const NODE_GAUGE_LANE_BASE: u32 = 0x8000_0000;

/// Synthetic metric-op lane for the sampler's snapshot mark. `u32::MAX`
/// sorts after every other lane at the same instant, so the snapshot
/// includes every same-instant counter/gauge update in the merged replay.
const SAMPLE_LANE: u32 = u32::MAX;

impl VmstatSampler {
    /// Sample the given nodes every `interval` (the paper used 1 s).
    pub fn new(interval: SimDuration, nodes: Vec<NodeId>) -> Self {
        let n = nodes.len();
        VmstatSampler {
            interval,
            nodes,
            last_busy: vec![SimDuration::ZERO; n],
            last_at: SimTime::ZERO,
        }
    }
}

impl Actor for VmstatSampler {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.timer(self.interval, Tick);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        debug_assert!(msg.downcast::<Tick>().is_ok());
        let now = ctx.now();
        let window = now.saturating_since(self.last_at).as_micros() as f64;
        for (i, &node) in self.nodes.iter().enumerate() {
            let (busy_now, mem, backlog) = {
                let os = ctx.service::<OsModel>();
                let n = os.node(node);
                (
                    n.cpu.busy_integral(now),
                    n.consumption().0,
                    n.cpu.backlog(now),
                )
            };
            let delta = busy_now.saturating_sub(self.last_busy[i]).as_micros() as f64;
            let idle = if window > 0.0 {
                (1.0 - delta / window).clamp(0.0, 1.0)
            } else {
                1.0
            };
            self.last_busy[i] = busy_now;
            ctx.service_mut::<VmstatLog>().samples.push(VmSample {
                at: now,
                node,
                idle,
                mem_bytes: mem,
            });
            // Feed the metrics plane (no-op unless a registry is
            // registered): the CPU run-queue depth in time units is the
            // model's per-node queue-depth signal.
            //
            // The sampler is *replicated* under sharding, each replica
            // holding only its shard's nodes, so ops must not ride the
            // sampler's own lane: the per-lane seq would then count
            // 3 × local-node-count ops per tick and diverge between
            // layouts. Instead each node's gauges ride a synthetic
            // per-node lane (a node is sampled by exactly one replica,
            // so its lane's seq stream is layout-invariant).
            telemetry::with_metrics(ctx, |m, at| {
                let ix = node.0;
                m.set_recorder(NODE_GAUGE_LANE_BASE | u32::from(ix), at);
                m.set_gauge(
                    &format!("node{ix}.cpu_backlog_us"),
                    backlog.as_micros() as f64,
                );
                m.set_gauge(&format!("node{ix}.idle"), idle);
                m.set_gauge(&format!("node{ix}.mem_mb"), mem as f64 / (1024.0 * 1024.0));
            });
        }
        self.last_at = now;
        // Snapshot the metrics plane at the same instant (no-op unless a
        // registry is registered): one time-series row per counter/gauge.
        // Riding the existing tick keeps profiled runs free of extra
        // kernel events. The snapshot mark rides its own dedicated lane
        // (one op per tick → seq = tick index on every replica), so the
        // replicated samplers' marks are *exact* duplicates that the
        // merge collapses to one snapshot — and `SAMPLE_LANE` sorts
        // after every other lane, so the snapshot sees all of the
        // instant's updates. The end-to-end `probes_in_flight` gauge is NOT
        // refreshed here: it needs the whole run's RTT records, which no
        // single shard holds — the experiment driver derives its series
        // from the merged collector and splices it in at these same
        // sample instants (`MetricsRegistry::merged`).
        telemetry::with_metrics(ctx, |m, at| {
            m.set_recorder(SAMPLE_LANE, at);
            m.sample(at);
        });
        ctx.timer(self.interval, Tick);
    }

    fn name(&self) -> &str {
        "vmstat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeSpec, OsModel};
    use simcore::{FnActor, Simulation};

    #[test]
    fn sampler_records_idle_and_busy_windows() {
        let mut sim = Simulation::new(1);
        let mut os = OsModel::new();
        let node = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        sim.add_service(os);
        sim.add_service(VmstatLog::new());
        sim.add_actor(VmstatSampler::new(SimDuration::from_secs(1), vec![node]));
        // A worker that burns 500 ms of CPU at t=2s (inside the 3rd window).
        let worker = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            let now = ctx.now();
            ctx.service_mut::<OsModel>()
                .execute(node, now, SimDuration::from_millis(500));
        }));
        sim.schedule(SimDuration::from_millis(2_100), worker, Box::new(()));
        sim.run_until(SimTime::from_secs(4));
        let log = sim.service::<VmstatLog>().unwrap();
        let samples: Vec<_> = log.for_node(node).collect();
        assert_eq!(samples.len(), 4);
        assert!((samples[0].idle - 1.0).abs() < 1e-9);
        assert!((samples[1].idle - 1.0).abs() < 1e-9);
        // Window 2..3s contains 500 ms busy.
        assert!(
            (samples[2].idle - 0.5).abs() < 1e-6,
            "idle={}",
            samples[2].idle
        );
        assert!((samples[3].idle - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_aggregates() {
        let mut log = VmstatLog::new();
        let node = NodeId(0);
        for (t, idle, mem) in [(1, 1.0, 10), (2, 0.5, 30), (3, 0.75, 20)] {
            log.samples.push(VmSample {
                at: SimTime::from_secs(t),
                node,
                idle,
                mem_bytes: mem,
            });
        }
        assert!((log.mean_idle(node).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(log.peak_mem(node), Some(30));
        assert_eq!(log.mean_idle(NodeId(9)), None);
        assert_eq!(log.peak_mem(NodeId(9)), None);
    }
}
