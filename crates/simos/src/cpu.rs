//! Single-core CPU model with FIFO queueing and thread-count overhead.
//!
//! Each Hydra node has one Pentium III core. We model it as a
//! work-conserving FIFO server: an operation submitted at `now` with cost
//! `c` completes at `max(now, busy_until) + c'`, where `c'` is `c` inflated
//! by a context-switching factor that grows with the number of runnable
//! threads on the node. This is the mechanism behind the paper's smooth
//! RTT-vs-connections growth (fig 7) and the CPU-idle curves (fig 6, 13):
//! thousands of thread-per-connection Java threads on a 2001-era CPU made
//! every operation slower.
//!
//! Utilization accounting exploits the work-conserving FIFO property:
//! busy time in `[0, t]` equals `total submitted work − backlog remaining
//! at t`, so we never need to store individual busy intervals.

use simcore::{SimDuration, SimTime};

/// A single-core FIFO CPU.
#[derive(Debug, Clone)]
pub struct CpuServer {
    /// Instant until which already-accepted work occupies the core.
    busy_until: SimTime,
    /// Sum of all effective (inflated) costs ever accepted.
    total_work: SimDuration,
    /// Per-runnable-thread cost inflation coefficient.
    cs_coeff: f64,
    /// Number of runnable threads currently hosted on this node.
    threads: u32,
    /// Threads exempt from inflation (e.g. the baseline OS threads).
    baseline_threads: u32,
    /// Scheduler dispatch latency added per runnable thread: time a
    /// runnable job waits while the scheduler cycles through other
    /// threads. Pure latency — it does not occupy the core.
    sched_latency_per_thread: SimDuration,
    /// Jobs accepted (for diagnostics).
    jobs: u64,
}

impl CpuServer {
    /// New idle CPU. `cs_coeff` is the fractional slowdown added per
    /// runnable thread beyond the baseline (e.g. `0.0015` = +0.15 % cost
    /// per thread).
    pub fn new(cs_coeff: f64, baseline_threads: u32) -> Self {
        CpuServer {
            busy_until: SimTime::ZERO,
            total_work: SimDuration::ZERO,
            cs_coeff,
            threads: baseline_threads,
            baseline_threads,
            sched_latency_per_thread: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Set the per-thread scheduler dispatch latency (see field docs).
    pub fn set_sched_latency(&mut self, per_thread: SimDuration) {
        self.sched_latency_per_thread = per_thread;
    }

    /// Register `n` additional runnable threads.
    pub fn add_threads(&mut self, n: u32) {
        self.threads += n;
    }

    /// Deregister `n` runnable threads (saturating at the baseline).
    pub fn remove_threads(&mut self, n: u32) {
        self.threads = self.threads.saturating_sub(n).max(self.baseline_threads);
    }

    /// Current runnable thread count (including baseline).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The inflation factor applied to job costs right now.
    pub fn inflation(&self) -> f64 {
        1.0 + self.cs_coeff * f64::from(self.threads.saturating_sub(self.baseline_threads))
    }

    /// Submit a job of base cost `cost` at time `now`; returns its
    /// completion time. The core is occupied for the (inflated) cost; on
    /// top of that the caller observes the scheduler dispatch latency
    /// (runnable threads × per-thread latency), which delays completion
    /// without occupying the core — the dominant effect behind the
    /// paper's RTT growth with connection count (fig 7).
    pub fn execute(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let effective = cost.mul_f64(self.inflation());
        let start = now.max(self.busy_until);
        let busy_done = start + effective;
        self.busy_until = busy_done;
        self.total_work += effective;
        self.jobs += 1;
        let extra_threads = u64::from(self.threads.saturating_sub(self.baseline_threads));
        busy_done + self.sched_latency_per_thread.saturating_mul(extra_threads)
    }

    /// Submit a job but give up if it could not *start* within `patience`
    /// (models bounded accept queues). Returns `Err(backlog)` if rejected.
    pub fn execute_with_patience(
        &mut self,
        now: SimTime,
        cost: SimDuration,
        patience: SimDuration,
    ) -> Result<SimTime, SimDuration> {
        let backlog = self.backlog(now);
        if backlog > patience {
            return Err(backlog);
        }
        Ok(self.execute(now, cost))
    }

    /// Work remaining in the queue as of `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Total busy microseconds in `[0, now]`.
    ///
    /// Exact for this work-conserving FIFO model **provided `now` is not
    /// earlier than the latest `execute` submission** (queries about the
    /// past made after later submissions would misattribute the new work).
    /// The vmstat sampler always queries at the current simulation time, so
    /// the invariant holds by construction.
    pub fn busy_integral(&self, now: SimTime) -> SimDuration {
        self.total_work.saturating_sub(self.backlog(now))
    }

    /// Jobs ever accepted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Sum of all effective (inflated) costs ever accepted — the
    /// profiler's conservation target: every microsecond in here must
    /// be attributed to exactly one component.
    pub fn total_work(&self) -> SimDuration {
        self.total_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn idle_cpu_runs_immediately() {
        let mut cpu = CpuServer::new(0.0, 0);
        assert_eq!(cpu.execute(at(10), ms(5)), at(15));
    }

    #[test]
    fn fifo_queueing() {
        let mut cpu = CpuServer::new(0.0, 0);
        assert_eq!(cpu.execute(at(0), ms(10)), at(10));
        // Second job submitted at t=2 waits for the first.
        assert_eq!(cpu.execute(at(2), ms(5)), at(15));
        // Third submitted after the queue drained.
        assert_eq!(cpu.execute(at(100), ms(1)), at(101));
    }

    #[test]
    fn thread_inflation() {
        let mut cpu = CpuServer::new(0.01, 2);
        assert!((cpu.inflation() - 1.0).abs() < 1e-12);
        cpu.add_threads(100);
        assert!((cpu.inflation() - 2.0).abs() < 1e-12);
        let done = cpu.execute(at(0), ms(10));
        assert_eq!(done, at(20));
        cpu.remove_threads(100);
        assert!((cpu.inflation() - 1.0).abs() < 1e-12);
        cpu.remove_threads(1000);
        assert_eq!(cpu.threads(), 2, "never drops below baseline");
    }

    #[test]
    fn busy_integral_exact_when_queried_chronologically() {
        let mut cpu = CpuServer::new(0.0, 0);
        cpu.execute(at(0), ms(10)); // busy 0..10
        assert_eq!(cpu.busy_integral(at(10)), ms(10));
        assert_eq!(cpu.busy_integral(at(15)), ms(10)); // idle gap
        cpu.execute(at(20), ms(5)); // busy 20..25
        assert_eq!(cpu.busy_integral(at(22)), ms(12));
        assert_eq!(cpu.busy_integral(at(30)), ms(15));
    }

    #[test]
    fn busy_integral_mid_job() {
        let mut cpu = CpuServer::new(0.0, 0);
        cpu.execute(at(0), ms(100));
        assert_eq!(cpu.busy_integral(at(40)), ms(40));
        assert_eq!(cpu.backlog(at(40)), ms(60));
    }

    #[test]
    fn patience_rejects_when_backlogged() {
        let mut cpu = CpuServer::new(0.0, 0);
        cpu.execute(at(0), ms(100));
        assert!(cpu.execute_with_patience(at(0), ms(1), ms(50)).is_err());
        assert!(cpu.execute_with_patience(at(60), ms(1), ms(50)).is_ok());
        assert_eq!(cpu.jobs(), 2);
    }
}
