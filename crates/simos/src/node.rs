//! Nodes, processes, and the `OsModel` service tying CPU and memory
//! accounting together.

use crate::cpu::CpuServer;
use crate::memory::{Bytes, OomError, ProcessMemory};
use simcore::{SimDuration, SimTime};
use std::fmt;

/// Identifies a node (machine) in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies a process (JVM) on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId {
    /// Hosting node.
    pub node: NodeId,
    /// Index within the node's process table.
    pub ix: u16,
}

/// Static description of a node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable name (e.g. "hydra1").
    pub name: String,
    /// Physical RAM.
    pub ram: Bytes,
    /// RAM reserved for the OS and page cache (unavailable to processes).
    pub os_reserved: Bytes,
    /// Per-runnable-thread CPU cost inflation (see [`CpuServer`]).
    pub cs_coeff: f64,
    /// Per-runnable-thread scheduler dispatch latency (see [`CpuServer`]).
    pub sched_latency: simcore::SimDuration,
    /// Baseline runnable threads (OS daemons etc.).
    pub baseline_threads: u32,
}

impl NodeSpec {
    /// The paper's Hydra node: Pentium III 866 MHz, 2 GB RAM.
    pub fn hydra(name: impl Into<String>, cs_coeff: f64) -> Self {
        NodeSpec {
            name: name.into(),
            ram: Bytes::mib(2048),
            os_reserved: Bytes::mib(256),
            cs_coeff,
            sched_latency: simcore::SimDuration::ZERO,
            baseline_threads: 20,
        }
    }

    /// Builder: set the scheduler dispatch latency per runnable thread.
    pub fn with_sched_latency(mut self, per_thread: simcore::SimDuration) -> Self {
        self.sched_latency = per_thread;
        self
    }
}

/// Runtime state of one node.
pub struct Node {
    /// Static spec.
    pub spec: NodeSpec,
    /// The node's single core.
    pub cpu: CpuServer,
    procs: Vec<ProcessMemory>,
    /// Unallocated physical memory available to new processes.
    free_ram: u64,
    /// End of the current fault-injected slowdown window (none when in
    /// the past).
    slow_until: SimTime,
    /// CPU cost multiplier while `slow_until` is in the future.
    slow_factor: f64,
}

impl Node {
    fn new(spec: NodeSpec) -> Self {
        let free = spec.ram.0 - spec.os_reserved.0;
        let mut cpu = CpuServer::new(spec.cs_coeff, spec.baseline_threads);
        cpu.set_sched_latency(spec.sched_latency);
        Node {
            spec,
            cpu,
            procs: Vec::new(),
            free_ram: free,
            slow_until: SimTime::ZERO,
            slow_factor: 1.0,
        }
    }

    /// Total resident memory of all processes on this node.
    pub fn resident(&self) -> Bytes {
        Bytes(self.procs.iter().map(|p| p.resident().0).sum())
    }

    /// Total "memory consumption" (paper metric) of all processes.
    pub fn consumption(&self) -> Bytes {
        Bytes(self.procs.iter().map(|p| p.consumption().0).sum())
    }
}

/// Description of a process to launch.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// `-Xmx`-style heap cap.
    pub heap_cap: Bytes,
    /// Per-thread stack reservation.
    pub stack_size: Bytes,
    /// Idle resident footprint.
    pub baseline: Bytes,
}

impl ProcessSpec {
    /// A JVM configured like the paper's middleware processes:
    /// `-Xmx1024m`, 256 KiB stacks, ~48 MiB idle footprint.
    pub fn jvm_1g() -> Self {
        ProcessSpec {
            heap_cap: Bytes::mib(1024),
            stack_size: Bytes::kib(256),
            baseline: Bytes::mib(48),
        }
    }

    /// A lighter client JVM (simulation driver programs).
    pub fn jvm_client() -> Self {
        ProcessSpec {
            heap_cap: Bytes::mib(512),
            stack_size: Bytes::kib(256),
            baseline: Bytes::mib(24),
        }
    }
}

/// The cluster-wide OS resource model, registered as a kernel service.
#[derive(Default)]
pub struct OsModel {
    nodes: Vec<Node>,
    /// Gated wall-clock metering of [`OsModel::execute_metered`]; `None`
    /// (the default) keeps the hot path down to one discriminant check.
    /// `execute_metered` has no kernel [`Context`] access, so it cannot
    /// use the simscope service and accumulates internally instead.
    ///
    /// [`Context`]: simcore::Context
    wall: Option<simcore::WallAccum>,
}

impl OsModel {
    /// Empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len() as u16);
        self.nodes.push(Node::new(spec));
        id
    }

    /// Launch a process on a node. The process gets its heap cap reserved
    /// against physical RAM; the remainder of free RAM becomes its native
    /// pool (shared-nothing approximation).
    pub fn add_process(&mut self, node: NodeId, spec: ProcessSpec) -> ProcessId {
        let n = &mut self.nodes[node.0 as usize];
        // Native pool: what's physically left once the heap cap is carved
        // out. (If heap cap exceeds free RAM the JVM would fail to start;
        // model that as a tiny native pool.)
        let native = n.free_ram.saturating_sub(spec.heap_cap.0);
        n.free_ram = n.free_ram.saturating_sub(spec.heap_cap.0 + spec.baseline.0);
        let pm = ProcessMemory::new(spec.heap_cap, Bytes(native), spec.stack_size, spec.baseline);
        let ix = n.procs.len() as u16;
        n.procs.push(pm);
        ProcessId { node, ix }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Borrow a node mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Borrow a process's memory accounting.
    pub fn mem(&self, pid: ProcessId) -> &ProcessMemory {
        &self.nodes[pid.node.0 as usize].procs[pid.ix as usize]
    }

    /// Borrow a process's memory accounting mutably.
    pub fn mem_mut(&mut self, pid: ProcessId) -> &mut ProcessMemory {
        &mut self.nodes[pid.node.0 as usize].procs[pid.ix as usize]
    }

    /// Run `cost` on a node's CPU; returns completion time. While a
    /// fault-injected slowdown window is open the cost is scaled by the
    /// node's slowdown factor.
    pub fn execute(&mut self, node: NodeId, now: SimTime, cost: SimDuration) -> SimTime {
        self.execute_metered(node, now, cost).0
    }

    /// Like [`OsModel::execute`], but also returns the *effective* cost
    /// the CPU accepted (after slowdown and thread inflation) — what a
    /// profiling site must charge so attribution conserves exactly
    /// against [`OsModel::total_submitted_work`].
    pub fn execute_metered(
        &mut self,
        node: NodeId,
        now: SimTime,
        cost: SimDuration,
    ) -> (SimTime, SimDuration) {
        let t0 = self.wall.as_ref().map(|_| std::time::Instant::now());
        let n = &mut self.nodes[node.0 as usize];
        let cost = if now < n.slow_until {
            cost.mul_f64(n.slow_factor)
        } else {
            cost
        };
        let before = n.cpu.total_work();
        let done = n.cpu.execute(now, cost);
        let out = (done, n.cpu.total_work().saturating_sub(before));
        if let (Some(t0), Some(w)) = (t0, self.wall.as_mut()) {
            w.add(t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Turn on wall-clock metering of [`OsModel::execute_metered`]. Off by
    /// default.
    pub fn enable_wall_metering(&mut self) {
        if self.wall.is_none() {
            self.wall = Some(simcore::WallAccum::default());
        }
    }

    /// Wall-clock totals for CPU metering, if enabled.
    pub fn wall_metering(&self) -> Option<simcore::WallAccum> {
        self.wall
    }

    /// Total effective CPU work ever submitted across all nodes — the
    /// kernel's total simulated busy time (work still queued at the end
    /// of a run counts: it was submitted and will be executed).
    pub fn total_submitted_work(&self) -> SimDuration {
        self.nodes
            .iter()
            .fold(SimDuration::ZERO, |acc, n| acc + n.cpu.total_work())
    }

    /// Open a CPU slowdown window on `node`: costs are multiplied by
    /// `factor` until `until`. Unknown nodes are ignored (fault schedules
    /// may name nodes an experiment does not deploy).
    pub fn set_slowdown(&mut self, node: NodeId, until: SimTime, factor: f64) {
        if let Some(n) = self.nodes.get_mut(node.0 as usize) {
            n.slow_until = until;
            n.slow_factor = factor;
        }
    }

    /// Spawn a thread in `pid`: reserves a stack and registers a runnable
    /// thread with the node's CPU. The typed error is how middlewares learn
    /// they must refuse a connection.
    pub fn spawn_thread(&mut self, pid: ProcessId) -> Result<(), OomError> {
        let n = &mut self.nodes[pid.node.0 as usize];
        n.procs[pid.ix as usize].spawn_thread()?;
        n.cpu.add_threads(1);
        Ok(())
    }

    /// Kill a thread in `pid`.
    pub fn kill_thread(&mut self, pid: ProcessId) {
        let n = &mut self.nodes[pid.node.0 as usize];
        n.procs[pid.ix as usize].kill_thread();
        n.cpu.remove_threads(1);
    }

    /// Allocate heap in `pid`.
    pub fn alloc(&mut self, pid: ProcessId, bytes: Bytes) -> Result<(), OomError> {
        self.mem_mut(pid).alloc(bytes)
    }

    /// Free heap in `pid`.
    pub fn free(&mut self, pid: ProcessId, bytes: Bytes) {
        self.mem_mut(pid).free(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydra_spec_defaults() {
        let spec = NodeSpec::hydra("hydra1", 0.001);
        assert_eq!(spec.ram, Bytes::mib(2048));
        assert_eq!(spec.baseline_threads, 20);
    }

    #[test]
    fn process_native_pool_is_leftover_ram() {
        let mut os = OsModel::new();
        let n = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        let pid = os.add_process(n, ProcessSpec::jvm_1g());
        // 2048 - 256 (OS) - 1024 (heap cap) = 768 MiB native; / 256 KiB = 3072 threads.
        assert_eq!(os.mem(pid).thread_headroom(), 3072);
    }

    #[test]
    fn spawn_thread_updates_cpu_and_memory() {
        let mut os = OsModel::new();
        let n = os.add_node(NodeSpec::hydra("hydra1", 0.001));
        let pid = os.add_process(n, ProcessSpec::jvm_1g());
        let t0 = os.node(n).cpu.threads();
        for _ in 0..10 {
            os.spawn_thread(pid).unwrap();
        }
        assert_eq!(os.node(n).cpu.threads(), t0 + 10);
        assert_eq!(os.mem(pid).threads(), 10);
        os.kill_thread(pid);
        assert_eq!(os.node(n).cpu.threads(), t0 + 9);
    }

    #[test]
    fn thread_oom_surfaces() {
        let mut os = OsModel::new();
        let n = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        let pid = os.add_process(n, ProcessSpec::jvm_1g());
        let headroom = os.mem(pid).thread_headroom();
        for _ in 0..headroom {
            os.spawn_thread(pid).unwrap();
        }
        assert!(os.spawn_thread(pid).is_err());
    }

    #[test]
    fn execute_delegates_to_cpu() {
        let mut os = OsModel::new();
        let n = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        let done = os.execute(n, SimTime::from_millis(1), SimDuration::from_millis(2));
        assert_eq!(done, SimTime::from_millis(3));
    }

    #[test]
    fn node_resident_sums_processes() {
        let mut os = OsModel::new();
        let n = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        let a = os.add_process(n, ProcessSpec::jvm_client());
        let b = os.add_process(n, ProcessSpec::jvm_client());
        os.alloc(a, Bytes::mib(10)).unwrap();
        os.alloc(b, Bytes::mib(20)).unwrap();
        assert_eq!(os.node(n).resident(), Bytes::mib(24 + 24 + 30));
    }
}
