//! Overhead of the `simtrace` instrumentation when tracing is disabled.
//!
//! Every instrumentation site goes through `simtrace::with_trace`, which
//! is a single service-map probe when no `TraceCollector` is registered.
//! This bench pins the claim that tracing is free when off: the untraced
//! experiment (the default, identical to the pre-instrumentation hot
//! path) vs the same spec with the collector registered. The `off`
//! numbers are the regression sentinel — they must not drift from the
//! other experiment benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridmon_core::{run_experiment, ExperimentSpec, SystemUnderTest};

const MSGS: u32 = 8;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(20);
    for (label, system) in [
        ("narada", SystemUnderTest::NaradaSingle),
        ("rgma", SystemUnderTest::RgmaSingle),
    ] {
        let off = ExperimentSpec::paper_default(format!("bench/{label}"), system, 8).scaled(MSGS);
        let on = off.clone().traced();
        g.bench_with_input(BenchmarkId::new("off", label), &off, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
        g.bench_with_input(BenchmarkId::new("on", label), &on, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
