//! Microbenchmarks of the substrate hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simcore::{ActorId, EventQueue, SimRng, SimTime};
use wire::{Headers, Message, MessageId, Value};

fn sample_message() -> Message {
    Message::map(
        Headers::new(MessageId(7), "power.monitor", SimTime::from_secs(1)),
        [
            ("gen_id".to_string(), Value::Int(42)),
            ("power_kw".to_string(), Value::Double(812.5)),
            ("voltage".to_string(), Value::Float(229.7)),
            ("seq".to_string(), Value::Long(1234)),
            ("site".to_string(), Value::Str("site-0042".into())),
        ],
    )
    .with_property("id", 42i32)
    .with_property("region", "uk")
}

fn bench_selector(c: &mut Criterion) {
    let mut g = c.benchmark_group("selector");
    g.bench_function("parse_simple", |b| {
        b.iter(|| jms::selector::parse(black_box("id<10000")).unwrap())
    });
    g.bench_function("parse_complex", |b| {
        b.iter(|| {
            jms::selector::parse(black_box(
                "(gen_id BETWEEN 0 AND 750 AND region IN ('uk','ie')) OR \
                 (power_kw > 1000.0 AND site LIKE 'hydra%')",
            ))
            .unwrap()
        })
    });
    let msg = sample_message();
    let simple = jms::Selector::compile("id < 10000").unwrap();
    let complex = jms::Selector::compile(
        "(id BETWEEN 0 AND 750 AND region IN ('uk','ie')) OR site LIKE 'hydra%'",
    )
    .unwrap();
    g.bench_function("eval_simple", |b| {
        b.iter(|| simple.matches(black_box(&msg)))
    });
    g.bench_function("eval_complex", |b| {
        b.iter(|| complex.matches(black_box(&msg)))
    });
    g.finish();
}

fn bench_minisql(c: &mut Criterion) {
    let mut g = c.benchmark_group("minisql");
    let insert = "INSERT INTO generator (id, status, power, site) \
                  VALUES (42, 1, 812.503, 'site-0042')";
    g.bench_function("parse_insert", |b| {
        b.iter(|| minisql::parse(black_box(insert)).unwrap())
    });
    let mut cat = minisql::Catalog::new();
    cat.create(
        &minisql::parse(
            "CREATE TABLE generator (id INTEGER, status INTEGER, power DOUBLE, site CHAR(20))",
        )
        .unwrap(),
    )
    .unwrap();
    let schema = cat.table("generator").unwrap().clone();
    let minisql::Statement::Insert {
        columns, values, ..
    } = minisql::parse(insert).unwrap()
    else {
        unreachable!()
    };
    g.bench_function("normalize_insert", |b| {
        b.iter(|| {
            schema
                .normalize_insert(black_box(&columns), black_box(&values))
                .unwrap()
        })
    });
    let row = schema.normalize_insert(&columns, &values).unwrap();
    let minisql::Statement::Select { predicate, .. } =
        minisql::parse("SELECT * FROM generator WHERE id < 100 AND power > 500.0").unwrap()
    else {
        unreachable!()
    };
    let pred = predicate.unwrap();
    g.bench_function("eval_predicate", |b| {
        b.iter(|| minisql::eval_predicate(black_box(&pred), &schema, black_box(&row)))
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let msg = sample_message();
    g.bench_function("encode_message", |b| {
        b.iter(|| wire::encode_message(black_box(&msg)))
    });
    let bytes = wire::encode_message(&msg);
    g.bench_function("decode_message", |b| {
        b.iter(|| wire::decode_message(black_box(bytes.clone())).unwrap())
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.bench_function("record_1k", |b| {
        b.iter(|| {
            let mut h = telemetry::LatencyHistogram::new();
            for i in 0..1000u64 {
                h.record(black_box(i * 37 % 100_000));
            }
            h
        })
    });
    let mut h = telemetry::LatencyHistogram::new();
    for i in 0..100_000u64 {
        h.record(i * 37 % 5_000_000);
    }
    g.bench_function("quantile", |b| b.iter(|| h.quantile(black_box(0.99))));
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(1);
            let target = ActorId::from_index(0);
            for _ in 0..10_000 {
                q.schedule(
                    SimTime::from_micros(rng.next_u64() % 1_000_000),
                    target,
                    Box::new(()),
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    let msg = sample_message();
    for subs in [1usize, 100, 1000] {
        let mut engine = narada::MatchingEngine::new();
        for i in 0..subs {
            engine.subscribe(
                "power.monitor",
                simnet_conn(i as u32),
                0,
                jms::Selector::compile("id < 10000").unwrap(),
                jms::AckMode::Auto,
            );
        }
        g.bench_function(format!("match_{subs}_subs"), |b| {
            b.iter(|| engine.match_message(black_box("power.monitor"), black_box(&msg)))
        });
    }
    g.finish();
}

fn simnet_conn(n: u32) -> simnet::ConnId {
    simnet::ConnId(n)
}

criterion_group!(
    benches,
    bench_selector,
    bench_minisql,
    bench_codec,
    bench_histogram,
    bench_event_queue,
    bench_matching
);
criterion_main!(benches);
