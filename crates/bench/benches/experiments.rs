//! One criterion group per paper table/figure: the same deployments the
//! `repro` harness runs, at a reduced per-generator message budget so
//! `cargo bench` completes in minutes. These benches double as
//! regression sentinels for simulator throughput (events/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridmon_core::{run_experiment, scenarios};

/// Message budget per generator for benchmarking (full scale is 180).
const MSGS: u32 = 4;

fn bench_table2_fig3_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_comparison");
    g.sample_size(10);
    for spec in scenarios::table2_specs(MSGS) {
        let name = spec.name.trim_start_matches("table2/").to_owned();
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_fig6_fig7_fig8_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_narada_single");
    g.sample_size(10);
    for spec in scenarios::narada_single_specs(MSGS) {
        let n = spec.generators;
        g.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_fig9_dbn(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_narada_dbn");
    g.sample_size(10);
    for spec in scenarios::narada_dbn_specs(MSGS) {
        let n = spec.generators;
        g.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_fig10_secondary(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_rgma_secondary");
    g.sample_size(10);
    for spec in scenarios::rgma_secondary_specs(MSGS) {
        let n = spec.generators;
        g.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_fig11_fig12_fig13_rgma_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_rgma_single");
    g.sample_size(10);
    for spec in scenarios::rgma_single_specs(MSGS) {
        let n = spec.generators;
        g.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_fig14_rgma_distributed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_rgma_distributed");
    g.sample_size(10);
    for spec in scenarios::rgma_distributed_specs(MSGS) {
        let n = spec.generators;
        g.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_fig15_decomposition(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_decomposition");
    g.sample_size(10);
    for spec in scenarios::fig15_specs(MSGS) {
        let name = spec.name.trim_start_matches("fig15/").to_owned();
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for spec in scenarios::dbn_routing_ablation(MSGS, 400) {
        let name = spec.name.trim_start_matches("ablation/").to_owned();
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    for spec in scenarios::secondary_delay_ablation(MSGS) {
        let name = spec.name.trim_start_matches("ablation/").to_owned();
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| run_experiment(spec))
        });
    }
    g.finish();
}

fn bench_warmup_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("rgma_warmup_loss");
    g.sample_size(10);
    let spec = scenarios::rgma_no_warmup_spec(MSGS);
    g.bench_function("no_warmup_400", |b| b.iter(|| run_experiment(&spec)));
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_fig3_fig4,
    bench_fig6_fig7_fig8_single,
    bench_fig9_dbn,
    bench_fig10_secondary,
    bench_fig11_fig12_fig13_rgma_single,
    bench_fig14_rgma_distributed,
    bench_fig15_decomposition,
    bench_ablations,
    bench_warmup_loss
);
criterion_main!(benches);
