//! # gridmon-bench — criterion benchmarks
//!
//! Two layers:
//!
//! * `benches/substrates.rs` — microbenchmarks of the hot substrate code
//!   (selector language, SQL engine, codec, histogram, event queue,
//!   matching engine).
//! * `benches/experiments.rs` — one group per paper table/figure, running
//!   the same deployments as the `repro` harness at a reduced message
//!   budget so `cargo bench` finishes in minutes while still exercising
//!   every mechanism.
