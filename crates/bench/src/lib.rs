//! # gridmon-bench — criterion benchmarks
//!
//! Two layers:
//!
//! * `benches/substrates.rs` — microbenchmarks of the hot substrate code
//!   (selector language, SQL engine, codec, histogram, event queue,
//!   matching engine).
//! * `benches/experiments.rs` — one group per paper table/figure, running
//!   the same deployments as the `repro` harness at a reduced message
//!   budget so `cargo bench` finishes in minutes while still exercising
//!   every mechanism.
//!
//! Plus one tiny library piece: [`SelfTimer`], the wall-clock self-timer
//! the perf-baseline harness mode (`repro --bench-json`) wraps around
//! each experiment batch.

use std::time::Instant;

/// Wall-clock self-timer for the perf baseline: accumulates labelled
/// spans of host time so `repro --bench-json` can report both the
/// per-experiment wall time (from `ExperimentResult::wall_secs`) and the
/// end-to-end harness overhead around the worker pool.
#[derive(Debug)]
pub struct SelfTimer {
    started: Instant,
    spans: Vec<(String, f64)>,
}

impl SelfTimer {
    /// Start timing now.
    pub fn start() -> Self {
        SelfTimer {
            started: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Time one closure and record it under `label`.
    pub fn span<T>(&mut self, label: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.spans.push((label.into(), t0.elapsed().as_secs_f64()));
        out
    }

    /// Seconds since `start()`.
    pub fn total_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Recorded `(label, seconds)` spans, in recording order.
    pub fn spans(&self) -> &[(String, f64)] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates_labelled_spans() {
        let mut t = SelfTimer::start();
        let v = t.span("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].0, "work");
        assert!(t.spans()[0].1 >= 0.0);
        assert!(t.total_secs() >= t.spans()[0].1);
    }
}
