//! Fault-injection conformance suite: scripted faults against both
//! middlewares, proving the recovery machinery does what the design
//! claims — and that the degradation accounting explains every loss.
//!
//! Test names are prefixed `narada_tcp_`, `narada_udp_auto_`,
//! `narada_udp_client_`, `rgma_`, and `gridlog_` so the CI fault-matrix
//! job can run each cell with a `cargo test --test fault_conformance
//! <prefix>` filter.

use gridmon::core::{run_experiment, ExperimentResult, ExperimentSpec, SystemUnderTest};
use gridmon::jms::AckMode;
use gridmon::simfault::FaultSchedule;
use gridmon::simnet::Transport;
use gridmon::telemetry::Conservation;

/// Three distinct seeds: the crash asymmetry must hold on all of them,
/// not on one lucky draw.
const SEEDS: [u64; 3] = [0x9e3779b97f4a7c15, 0xC0FFEE, 7];

/// A Narada run long enough that the canonical fault window (t = 120 s
/// crash, t = 150 s restart) lands mid-publishing.
fn narada_spec(name: &str, transport: Transport, ack: AckMode, seed: u64) -> ExperimentSpec {
    let mut spec =
        ExperimentSpec::paper_default(name, SystemUnderTest::NaradaSingle, 12).scaled(20);
    spec.transport = transport;
    spec.ack_mode = ack;
    spec.seed = seed;
    spec
}

/// A gridlog run with the same workload shape: the JMS acknowledge axis
/// maps onto the offset axis (CLIENT ↦ committed-offset resume, AUTO ↦
/// `auto.offset.reset=latest`).
fn gridlog_spec(name: &str, ack: AckMode, seed: u64) -> ExperimentSpec {
    let mut spec =
        ExperimentSpec::paper_default(name, SystemUnderTest::GridlogSingle, 12).scaled(20);
    spec.ack_mode = ack;
    spec.seed = seed;
    spec
}

fn rgma_spec(name: &str, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_default(name, SystemUnderTest::RgmaSingle, 8).scaled(20);
    spec.seed = seed;
    spec
}

fn crash() -> FaultSchedule {
    FaultSchedule::scenario("broker-crash").expect("known scenario")
}

/// Message-level conservation: after the drain window nothing is still
/// in flight, so every sent message is either delivered or dropped, and
/// any loss must be attributable to at least one injected fault effect.
fn assert_conserved(r: &ExperimentResult) {
    let s = &r.summary;
    let lost = s.sent - s.received;
    let cons = Conservation {
        sent: s.sent,
        delivered: s.received,
        dropped: lost,
        in_flight_at_end: 0,
    };
    assert!(cons.holds(), "conservation violated: {cons:?}");
    if lost > 0 {
        let f = r.fault_stats.expect("faulted run has stats");
        let attributed = f.link_drops + f.partition_drops + f.crash_drops + f.stall_rejections;
        assert!(
            attributed > 0,
            "{lost} messages lost with no attributable fault effect: {f:?}"
        );
    }
}

// --- Narada: UDP CLIENT-ack vs AUTO-ack across a broker crash --------

#[test]
fn narada_udp_client_recovers_all_messages_across_crash() {
    for seed in SEEDS {
        let spec = narada_spec("conf/udp-client", Transport::Udp, AckMode::Client, seed)
            .with_faults(crash());
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert_eq!(
            r.summary.received, r.summary.sent,
            "seed {seed:#x}: CLIENT-ack must recover every gap-recoverable \
             message across the crash ({f:?})"
        );
        assert!(f.reconnects > 0, "seed {seed:#x}: no reconnect happened");
        assert!(
            f.recovered > 0,
            "seed {seed:#x}: resync recovered nothing ({f:?})"
        );
        assert_conserved(&r);
    }
}

#[test]
fn narada_udp_auto_loses_crash_window_messages() {
    for seed in SEEDS {
        let spec =
            narada_spec("conf/udp-auto", Transport::Udp, AckMode::Auto, seed).with_faults(crash());
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert!(
            r.summary.received < r.summary.sent,
            "seed {seed:#x}: AUTO-ack has no durable log — crash-window \
             messages must be lost ({f:?})"
        );
        assert!(f.crash_drops > 0, "seed {seed:#x}: crash dropped nothing");
        assert_conserved(&r);
    }
}

#[test]
fn narada_udp_client_strictly_beats_auto_on_every_seed() {
    for seed in SEEDS {
        let client = run_experiment(
            &narada_spec("conf/order-client", Transport::Udp, AckMode::Client, seed)
                .with_faults(crash()),
        );
        let auto = run_experiment(
            &narada_spec("conf/order-auto", Transport::Udp, AckMode::Auto, seed)
                .with_faults(crash()),
        );
        assert_eq!(client.summary.sent, auto.summary.sent, "same workload");
        assert!(
            client.summary.received > auto.summary.received,
            "seed {seed:#x}: CLIENT {} must strictly beat AUTO {}",
            client.summary.received,
            auto.summary.received
        );
    }
}

#[test]
fn narada_udp_client_faulted_run_replays_identically() {
    let spec = narada_spec("conf/replay", Transport::Udp, AckMode::Client, SEEDS[0])
        .with_faults(crash())
        .traced();
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.summary.sent, b.summary.sent);
    assert_eq!(a.summary.received, b.summary.received);
    assert_eq!(
        a.summary.rtt_mean_ms.to_bits(),
        b.summary.rtt_mean_ms.to_bits()
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.fault_stats, b.fault_stats);
    let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
    assert_eq!(ta.jsonl, tb.jsonl, "same seed must export identical traces");
    assert_eq!(ta.chrome, tb.chrome);
    // The cross-check against the independent RttCollector is a hard
    // conformance requirement, faults or not.
    assert!(
        ta.disagreements.is_empty(),
        "trace vs RttCollector disagreements: {:?}",
        ta.disagreements
    );
}

// --- Narada: TCP across a broker crash ------------------------------

#[test]
fn narada_tcp_reconnects_and_bounds_loss() {
    for seed in SEEDS {
        let spec =
            narada_spec("conf/tcp", Transport::Tcp, AckMode::Auto, seed).with_faults(crash());
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert!(f.reconnects > 0, "seed {seed:#x}: no reconnect happened");
        let lost = r.summary.sent - r.summary.received;
        // TCP has no durable log (that is UDP + CLIENT-ack territory), so
        // everything from the crash until the subscriber's re-subscribe
        // is at risk: publishes on the wire before crash detection, plus
        // drained offline messages that race the subscriber's reconnect.
        // That window is crash → restart → resubscribe ≈ 35 s, i.e. at
        // most ~4 publishes per generator at the 10 s publish period.
        // The conformance claim is that loss is *bounded* by that window
        // — the clients resume and everything after it is delivered.
        assert!(
            lost <= 5 * spec.generators as u64,
            "seed {seed:#x}: lost {lost} of {} — reconnect did not bound \
             the damage ({f:?})",
            r.summary.sent
        );
        assert!(
            r.summary.received > r.summary.sent / 2,
            "seed {seed:#x}: delivery never resumed after restart"
        );
        assert!(
            f.delayed > 0,
            "seed {seed:#x}: offline buffering never engaged ({f:?})"
        );
        assert_conserved(&r);
    }
}

// --- gridlog: committed-offset vs latest-reset across a broker crash -

#[test]
fn gridlog_committed_recovers_all_records_across_crash() {
    for seed in SEEDS {
        let spec =
            gridlog_spec("conf/gridlog-committed", AckMode::Client, seed).with_faults(crash());
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert_eq!(
            r.summary.received, r.summary.sent,
            "seed {seed:#x}: the durable log + committed offsets must \
             recover every record across the crash ({f:?})"
        );
        assert!(f.reconnects > 0, "seed {seed:#x}: no reconnect happened");
        assert!(
            f.crash_drops > 0,
            "seed {seed:#x}: the crash window dropped nothing ({f:?})"
        );
        assert_conserved(&r);
    }
}

#[test]
fn gridlog_auto_offset_loses_crash_window_records() {
    for seed in SEEDS {
        let spec = gridlog_spec("conf/gridlog-auto", AckMode::Auto, seed).with_faults(crash());
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert!(
            r.summary.received < r.summary.sent,
            "seed {seed:#x}: reset-to-latest consumers rejoin at the log \
             end — the crash window must be lost ({f:?})"
        );
        assert!(f.crash_drops > 0, "seed {seed:#x}: crash dropped nothing");
        assert_conserved(&r);
    }
}

#[test]
fn gridlog_committed_strictly_beats_auto_on_every_seed() {
    for seed in SEEDS {
        let committed = run_experiment(
            &gridlog_spec("conf/gridlog-order-committed", AckMode::Client, seed)
                .with_faults(crash()),
        );
        let auto = run_experiment(
            &gridlog_spec("conf/gridlog-order-auto", AckMode::Auto, seed).with_faults(crash()),
        );
        assert_eq!(committed.summary.sent, auto.summary.sent, "same workload");
        assert!(
            committed.summary.received > auto.summary.received,
            "seed {seed:#x}: committed {} must strictly beat latest {}",
            committed.summary.received,
            auto.summary.received
        );
    }
}

#[test]
fn gridlog_restart_replays_segments_and_resumes() {
    for seed in SEEDS {
        let spec =
            gridlog_spec("conf/gridlog-replay-log", AckMode::Client, seed).with_faults(crash());
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        // The restart replays durable segments and reports the gap
        // between the group's committed offsets and the log end as
        // recoverable backlog.
        assert!(
            f.recovered > 0,
            "seed {seed:#x}: restart recovered no backlog ({f:?})"
        );
        assert!(
            f.delayed > 0,
            "seed {seed:#x}: offline buffering never engaged ({f:?})"
        );
        assert!(
            f.republished > 0,
            "seed {seed:#x}: no unacked batch was retransmitted ({f:?})"
        );
        assert_conserved(&r);
    }
}

#[test]
fn gridlog_faulted_run_replays_identically() {
    let spec = gridlog_spec("conf/gridlog-replay", AckMode::Client, SEEDS[0])
        .with_faults(crash())
        .traced();
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.summary.sent, b.summary.sent);
    assert_eq!(a.summary.received, b.summary.received);
    assert_eq!(
        a.summary.rtt_mean_ms.to_bits(),
        b.summary.rtt_mean_ms.to_bits()
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.fault_stats, b.fault_stats);
    let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
    assert_eq!(ta.jsonl, tb.jsonl, "same seed must export identical traces");
    assert_eq!(ta.chrome, tb.chrome);
    assert!(
        ta.disagreements.is_empty(),
        "trace vs RttCollector disagreements: {:?}",
        ta.disagreements
    );
}

// --- Sharded execution: the fault machinery is shard-invariant -------

/// Every conformance cell, replayed on 4 conservative shards
/// (`simshard`): the merged `FaultStats`, the conservation identity,
/// and the rendered degradation table must equal the serial run's
/// exactly. Prefixed per middleware so each CI fault-matrix cell also
/// covers its own sharded variant.
fn assert_shard_invariant_faults(spec: &ExperimentSpec) {
    let serial = run_experiment(spec);
    let sharded = run_experiment(&spec.clone().sharded(4));
    assert_eq!(serial.summary.sent, sharded.summary.sent, "{}", spec.name);
    assert_eq!(
        serial.summary.received, sharded.summary.received,
        "{}: loss pattern drifted under sharding",
        spec.name
    );
    assert_eq!(
        serial.fault_stats, sharded.fault_stats,
        "{}: degradation accounting drifted under sharding",
        spec.name
    );
    let table = |r: &ExperimentResult| {
        let f = r.fault_stats.expect("faulted run has stats");
        gridmon::telemetry::degradation_table(format!("conf — {}", r.name), &f.rows()).render()
    };
    assert_eq!(
        table(&serial),
        table(&sharded),
        "{}: degradation tables differ",
        spec.name
    );
    assert_conserved(&serial);
    assert_conserved(&sharded);
}

#[test]
fn narada_tcp_crash_is_shard_invariant() {
    let spec =
        narada_spec("conf/shard-tcp", Transport::Tcp, AckMode::Auto, SEEDS[0]).with_faults(crash());
    assert_shard_invariant_faults(&spec);
}

#[test]
fn narada_udp_client_crash_is_shard_invariant() {
    let spec = narada_spec(
        "conf/shard-udp-client",
        Transport::Udp,
        AckMode::Client,
        SEEDS[1],
    )
    .with_faults(crash());
    assert_shard_invariant_faults(&spec);
}

#[test]
fn gridlog_crash_is_shard_invariant() {
    let spec = gridlog_spec("conf/shard-gridlog", AckMode::Client, SEEDS[2]).with_faults(crash());
    assert_shard_invariant_faults(&spec);
}

#[test]
fn rgma_registry_restart_is_shard_invariant() {
    let spec = rgma_spec("conf/shard-rgma", SEEDS[0])
        .with_faults(FaultSchedule::scenario("registry-restart").expect("known scenario"));
    assert_shard_invariant_faults(&spec);
}

// --- R-GMA: registry restart and servlet stall ----------------------

#[test]
fn rgma_consumer_outlives_registry_restart() {
    for seed in SEEDS {
        let spec = rgma_spec("conf/rgma-restart", seed)
            .with_faults(FaultSchedule::scenario("registry-restart").expect("known scenario"));
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert_eq!(
            r.summary.received, r.summary.sent,
            "seed {seed:#x}: continuous SELECT must survive the registry \
             restart ({f:?})"
        );
        assert!(
            f.reregistrations > 0,
            "seed {seed:#x}: soft-state refresh never re-registered ({f:?})"
        );
        assert_conserved(&r);
    }
}

#[test]
fn rgma_insert_retry_rides_out_servlet_stall() {
    for seed in SEEDS {
        let spec = rgma_spec("conf/rgma-stall", seed)
            .with_faults(FaultSchedule::scenario("servlet-stall").expect("known scenario"));
        let r = run_experiment(&spec);
        let f = r.fault_stats.expect("faulted run has stats");
        assert!(
            f.stall_rejections > 0,
            "seed {seed:#x}: the stall rejected nothing ({f:?})"
        );
        assert!(
            f.http_retries > 0,
            "seed {seed:#x}: no insert was retried ({f:?})"
        );
        assert_eq!(
            r.summary.received, r.summary.sent,
            "seed {seed:#x}: retry-with-backoff must recover every insert \
             rejected during the stall ({f:?})"
        );
        assert_conserved(&r);
    }
}
