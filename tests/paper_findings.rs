//! Cross-crate integration tests: scaled-down versions of every paper
//! finding, asserting the qualitative orderings the study reports.
//! (Full-scale numbers are produced by the `repro` binary and recorded
//! in EXPERIMENTS.md.)

use gridmon::core::{run_all, run_experiment, scenarios, ExperimentSpec, SystemUnderTest};

const MSGS: u32 = 4;

#[test]
fn fig3_transport_ordering() {
    let results = run_all(&scenarios::table2_specs(MSGS), 0);
    let rtt: Vec<f64> = results.iter().map(|r| r.summary.rtt_mean_ms).collect();
    let (udp, udp_cli, nio, tcp, triple, eighty) = (rtt[0], rtt[1], rtt[2], rtt[3], rtt[4], rtt[5]);
    // "TCP is a very stable transport protocol and has excellent
    // performance. The results of UDP are surprisingly high."
    assert!(udp > tcp * 1.3, "UDP {udp} should be well above TCP {tcp}");
    assert!(udp_cli > tcp, "CLIENT-ack UDP still above TCP");
    assert!(
        udp_cli <= udp * 1.1,
        "CLIENT ack should not be slower than AUTO"
    );
    // "The performance slowed down with large payload."
    assert!(triple > tcp, "Triple {triple} above TCP {tcp}");
    // Fewer connections at higher rate is the fastest configuration.
    assert!(eighty < tcp, "80 conns {eighty} below TCP {tcp}");
    // NIO close to TCP but not faster.
    assert!(nio >= tcp && nio < tcp * 2.0);
}

#[test]
fn udp_loss_rates_match_paper_mechanisms() {
    let results = run_all(&scenarios::table2_specs(30), 0);
    let udp = &results[0].summary;
    let udp_cli = &results[1].summary;
    let tcp = &results[3].summary;
    assert!(udp.loss_rate > 0.0, "UDP AUTO loses a small fraction");
    assert!(udp.loss_rate < 0.01, "but well under 1%");
    assert!(
        udp_cli.loss_rate <= udp.loss_rate,
        "CLIENT-ack gap recovery reduces loss ({} vs {})",
        udp_cli.loss_rate,
        udp.loss_rate
    );
    assert_eq!(tcp.loss_rate, 0.0, "TCP never loses");
}

#[test]
fn fig7_rtt_grows_with_connections() {
    let results = run_all(&scenarios::narada_single_specs(MSGS), 0);
    let rtts: Vec<f64> = results.iter().map(|r| r.summary.rtt_mean_ms).collect();
    for w in rtts.windows(2) {
        assert!(w[1] > w[0], "RTT must increase with connections: {rtts:?}");
    }
    assert!(
        rtts.last().unwrap() / rtts.first().unwrap() > 2.0,
        "substantial growth from 500 to 3000: {rtts:?}"
    );
    // "99.8% of messages arrived within 100 milliseconds."
    for r in &results {
        assert!(
            r.summary.within_100ms > 0.99,
            "{}: {}",
            r.name,
            r.summary.within_100ms
        );
        assert_eq!(r.refused, 0, "single broker accepts up to 3000");
    }
}

#[test]
fn narada_connection_ceiling_between_3000_and_4000() {
    let ok = run_experiment(
        &ExperimentSpec::paper_default("ceiling/3000", SystemUnderTest::NaradaSingle, 3000)
            .scaled(2),
    );
    assert_eq!(ok.refused, 0);
    let fail = run_experiment(&scenarios::narada_single_4000(2));
    assert!(fail.refused > 0, "4000 connections must be refused");
    assert!(fail.connected >= 3800, "but most are accepted first");
}

#[test]
fn fig7_dbn_scales_past_single_broker_without_speedup() {
    let dbn = run_all(&scenarios::narada_dbn_specs(MSGS), 0);
    for r in &dbn {
        assert_eq!(r.refused, 0, "{}: DBN accepts all connections", r.name);
    }
    let single_3000 = run_all(&scenarios::narada_single_specs(MSGS), 0)
        .into_iter()
        .find(|r| r.generators == 3000)
        .unwrap();
    let dbn_3000 = dbn.iter().find(|r| r.generators == 3000).unwrap();
    // The paper's disappointment: despite three brokers, the DBN is no
    // faster than a single broker (broadcast deficiency).
    assert!(
        dbn_3000.summary.rtt_mean_ms > single_3000.summary.rtt_mean_ms * 0.5,
        "DBN RTT {} should not beat single {} by much",
        dbn_3000.summary.rtt_mean_ms,
        single_3000.summary.rtt_mean_ms
    );
    assert!(
        dbn_3000.broker_forwards > 0,
        "v1.1.3 floods messages between brokers"
    );
}

#[test]
fn rgma_is_orders_of_magnitude_slower_than_narada() {
    let narada = run_experiment(
        &ExperimentSpec::paper_default("cmp/n", SystemUnderTest::NaradaSingle, 200).scaled(MSGS),
    );
    let rgma = run_experiment(
        &ExperimentSpec::paper_default("cmp/r", SystemUnderTest::RgmaSingle, 200).scaled(MSGS),
    );
    assert!(
        rgma.summary.rtt_mean_ms > narada.summary.rtt_mean_ms * 20.0,
        "rgma {} vs narada {}",
        rgma.summary.rtt_mean_ms,
        narada.summary.rtt_mean_ms
    );
    // Fig 15: the R-GMA delay lives in the middleware Process Time.
    assert!(rgma.summary.pt_mean_ms > rgma.summary.prt_mean_ms * 5.0);
    assert!(rgma.summary.pt_mean_ms > rgma.summary.srt_mean_ms * 5.0);
    // Narada's three phases are all short (single-digit ms).
    assert!(narada.summary.prt_mean_ms < 10.0);
    assert!(narada.summary.pt_mean_ms < 20.0);
    assert!(narada.summary.srt_mean_ms < 10.0);
}

#[test]
fn rgma_connection_ceiling_near_800() {
    let ok = run_experiment(
        &ExperimentSpec::paper_default("rc/600", SystemUnderTest::RgmaSingle, 600).scaled(2),
    );
    assert_eq!(ok.refused, 0, "600 connections fit");
    let fail = run_experiment(&scenarios::rgma_single_800(2));
    assert!(fail.refused > 0, "800 connections exceed one server");
}

#[test]
fn rgma_distributed_beats_single_and_reaches_1000() {
    let single = run_all(&scenarios::rgma_single_specs(MSGS), 0);
    let dist = run_all(&scenarios::rgma_distributed_specs(MSGS), 0);
    let s600 = single.iter().find(|r| r.generators == 600).unwrap();
    let d600 = dist.iter().find(|r| r.generators == 600).unwrap();
    assert!(
        d600.summary.rtt_mean_ms < s600.summary.rtt_mean_ms,
        "distributed {} < single {}",
        d600.summary.rtt_mean_ms,
        s600.summary.rtt_mean_ms
    );
    assert!(
        d600.server_idle > s600.server_idle,
        "distributed spreads CPU load"
    );
    let d1000 = dist.iter().find(|r| r.generators == 1000).unwrap();
    assert_eq!(d1000.refused, 0, "the distributed deployment reaches 1000");
}

#[test]
fn fig10_secondary_producer_delays_dominate() {
    let results = run_all(&scenarios::rgma_secondary_specs(3), 0);
    for r in &results {
        assert!(
            r.summary.rtt_mean_ms > 10_000.0,
            "{}: secondary chain RTT {} must be tens of seconds",
            r.name,
            r.summary.rtt_mean_ms
        );
        let p100 = r.summary.percentiles_ms.last().unwrap().1;
        assert!(
            p100 < 45_000.0,
            "{}: bounded by ~35-40 s as in fig 10, got {}",
            r.name,
            p100
        );
    }
}

#[test]
fn warmup_loss_appears_and_disappears() {
    let lossy = run_experiment(&scenarios::rgma_no_warmup_spec(6));
    assert!(
        lossy.summary.loss_rate > 0.0,
        "publishing immediately loses early tuples"
    );
    assert!(
        lossy.summary.loss_rate < 0.2,
        "but only the first tuple or so"
    );
    let clean = run_experiment(
        &ExperimentSpec::paper_default("warm/400", SystemUnderTest::RgmaSingle, 400).scaled(6),
    );
    assert_eq!(
        clean.summary.loss_rate, 0.0,
        "the paper's 10-20 s wait removes the loss entirely"
    );
}

#[test]
fn table3_quadrant_holds() {
    // The study's summary table: Narada very good at real-time, average
    // scalability; R-GMA average at real-time, very good scalability.
    let n = run_experiment(
        &ExperimentSpec::paper_default("t3/n", SystemUnderTest::NaradaSingle, 400).scaled(MSGS),
    );
    let r = run_experiment(
        &ExperimentSpec::paper_default("t3/r", SystemUnderTest::RgmaSingle, 400).scaled(MSGS),
    );
    assert!(n.summary.rtt_mean_ms < 50.0, "Narada real-time: very good");
    assert!(
        r.summary.rtt_mean_ms > 200.0,
        "R-GMA real-time: average at best"
    );
    assert!(
        r.summary.within_5s > 0.99,
        "but R-GMA still fits the 5 s soft budget at this scale"
    );
}

#[test]
fn ablation_aggregation_trades_latency_for_broker_cpu() {
    let results = run_all(&scenarios::aggregation_ablation(30, 200), 0);
    // Constant byte rate: higher aggregation ⇒ fewer wire messages ⇒ more
    // idle broker CPU, at a small per-message RTT cost (the RMM claim:
    // message quantity dominates middleware overhead).
    let idle: Vec<f64> = results.iter().map(|r| r.server_idle).collect();
    let rtt: Vec<f64> = results.iter().map(|r| r.summary.rtt_mean_ms).collect();
    let sent: Vec<u64> = results.iter().map(|r| r.summary.sent).collect();
    assert!(
        sent[0] > sent[1] && sent[1] > sent[2],
        "fewer wire messages: {sent:?}"
    );
    assert!(
        idle[2] > idle[0],
        "10x aggregation must relieve the broker: {idle:?}"
    );
    assert!(
        rtt[2] > rtt[0],
        "bigger messages cost per-message latency: {rtt:?}"
    );
}

#[test]
fn ablation_poll_period_sets_subscribing_response_time() {
    let results = run_all(&scenarios::poll_period_ablation(6), 0);
    // SRT ≈ poll period / 2 (+ HTTP + client costs): strictly increasing
    // in the poll period, and the 1 s poll adds ~450 ms over the 10 ms one.
    let srt: Vec<f64> = results.iter().map(|r| r.summary.srt_mean_ms).collect();
    for w in srt.windows(2) {
        assert!(w[1] > w[0], "SRT must grow with the poll period: {srt:?}");
    }
    let delta = srt[3] - srt[0];
    assert!(
        (350.0..650.0).contains(&delta),
        "1 s vs 10 ms polling should differ by ≈ 495 ms of expected wait: {delta}"
    );
}

#[test]
fn ablation_routing_fix_removes_waste_without_hurting_delivery() {
    let results = run_all(&scenarios::dbn_routing_ablation(6, 300), 0);
    let broadcast = &results[0];
    let routed = &results[1];
    assert_eq!(broadcast.summary.received, broadcast.summary.sent);
    assert_eq!(routed.summary.received, routed.summary.sent);
    assert!(
        broadcast.broker_forwards >= 3 * routed.broker_forwards,
        "flooding multiplies inter-broker traffic: {} vs {}",
        broadcast.broker_forwards,
        routed.broker_forwards
    );
    assert!(
        routed.server_idle >= broadcast.server_idle,
        "routing saves broker CPU"
    );
}
