//! Differential determinism suite for the conservative parallel kernel
//! (`simshard`): same-seed sharded and serial runs must be
//! **byte-identical** — not statistically close — for all three
//! contenders, at every observation level, and under fault schedules.
//!
//! The experiment driver funnels every shard count (including the
//! serial fast path) through one merge pipeline, so equality here is a
//! structural property; these tests are the proof obligation. Carve-outs
//! from comparison are exactly the documented non-deterministic fields:
//! `wall_secs`, the wall-clock `scope` nanos, and the two
//! layout-dependent kernel counters (`peak_queue_depth`,
//! `depth_samples`) that `KernelStats::determinism_digest()` excludes —
//! a queue high-watermark is a property of one queue, and shards have
//! several.

use gridmon::core::{run_experiment, ExperimentResult, ExperimentSpec, SystemUnderTest};
use gridmon::jms::AckMode;
use gridmon::simfault::FaultSchedule;
use gridmon::simnet::Transport;
use proptest::prelude::*;

/// Every deterministic field of two results must agree exactly; float
/// comparisons are bit-level.
fn assert_equivalent(serial: &ExperimentResult, sharded: &ExperimentResult, label: &str) {
    let (a, b) = (&serial.summary, &sharded.summary);
    assert_eq!(a.sent, b.sent, "{label}: sent");
    assert_eq!(a.received, b.received, "{label}: received");
    assert_eq!(
        a.rtt_mean_ms.to_bits(),
        b.rtt_mean_ms.to_bits(),
        "{label}: rtt_mean {} vs {}",
        a.rtt_mean_ms,
        b.rtt_mean_ms
    );
    assert_eq!(
        a.rtt_stddev_ms.to_bits(),
        b.rtt_stddev_ms.to_bits(),
        "{label}: rtt_stddev"
    );
    assert_eq!(a.percentiles_ms, b.percentiles_ms, "{label}: percentiles");
    assert_eq!(
        a.distribution_us, b.distribution_us,
        "{label}: histogram summary (windowed-histogram merge)"
    );
    assert_eq!(
        a.prt_mean_ms.to_bits(),
        b.prt_mean_ms.to_bits(),
        "{label}: prt"
    );
    assert_eq!(
        a.pt_mean_ms.to_bits(),
        b.pt_mean_ms.to_bits(),
        "{label}: pt"
    );
    assert_eq!(
        a.srt_mean_ms.to_bits(),
        b.srt_mean_ms.to_bits(),
        "{label}: srt"
    );
    assert_eq!(
        serial.server_idle.to_bits(),
        sharded.server_idle.to_bits(),
        "{label}: server idle"
    );
    assert_eq!(
        serial.server_mem_mb.to_bits(),
        sharded.server_mem_mb.to_bits(),
        "{label}: server mem"
    );
    assert_eq!(serial.connected, sharded.connected, "{label}: connected");
    assert_eq!(serial.refused, sharded.refused, "{label}: refused");
    assert_eq!(serial.published, sharded.published, "{label}: published");
    assert_eq!(
        serial.broker_forwards, sharded.broker_forwards,
        "{label}: broker forwards"
    );
    assert_eq!(serial.sim_time, sharded.sim_time, "{label}: sim time");
    assert_eq!(serial.events, sharded.events, "{label}: event count");
    assert_eq!(
        serial.kernel.determinism_digest(),
        sharded.kernel.determinism_digest(),
        "{label}: kernel determinism digest"
    );
    assert_eq!(
        serial.fault_stats, sharded.fault_stats,
        "{label}: fault degradation accounting"
    );
    // Observability artifacts: byte-for-byte.
    match (&serial.trace, &sharded.trace) {
        (None, None) => {}
        (Some(ta), Some(tb)) => {
            assert_eq!(ta.jsonl, tb.jsonl, "{label}: trace JSONL bytes");
            assert_eq!(ta.chrome, tb.chrome, "{label}: Chrome trace bytes");
            assert!(
                tb.disagreements.is_empty(),
                "{label}: sharded trace/RttCollector cross-check failed: {:?}",
                tb.disagreements
            );
        }
        _ => panic!("{label}: trace artifacts present on one side only"),
    }
    match (&serial.profile, &sharded.profile) {
        (None, None) => {}
        (Some(pa), Some(pb)) => {
            assert_eq!(pa.table, pb.table, "{label}: self-time table bytes");
            assert_eq!(
                pa.collapsed, pb.collapsed,
                "{label}: collapsed stacks bytes"
            );
            assert_eq!(pa.prometheus, pb.prometheus, "{label}: Prometheus bytes");
            assert_eq!(pa.metrics_csv, pb.metrics_csv, "{label}: metrics CSV bytes");
            assert_eq!(pa.attributed, pb.attributed, "{label}: attributed CPU time");
            assert_eq!(pa.kernel_busy, pb.kernel_busy, "{label}: kernel busy time");
        }
        _ => panic!("{label}: profile artifacts present on one side only"),
    }
    // Freshness/SLO artifacts: the report (burn windows, AoI sawtooth,
    // age percentiles) and the rendered slo.csv must merge to the same
    // bytes regardless of shard layout.
    match (&serial.slo, &sharded.slo) {
        (None, None) => {}
        (Some(sa), Some(sb)) => {
            assert_eq!(sa.report, sb.report, "{label}: SLO report");
            assert_eq!(sa.csv, sb.csv, "{label}: slo.csv bytes");
        }
        _ => panic!("{label}: SLO artifacts present on one side only"),
    }
    // Scope artifacts measure host wall time (non-deterministic by
    // nature); only their *shape* must match.
    match (&serial.scope, &sharded.scope) {
        (None, None) => {}
        (Some(sa), Some(sb)) => {
            let sites = |r: &gridmon::simscope::HotpathReport| -> Vec<String> {
                r.sites.iter().map(|s| s.site.clone()).collect()
            };
            assert_eq!(
                sites(&sa.report),
                sites(&sb.report),
                "{label}: hot-path site set"
            );
        }
        _ => panic!("{label}: scope artifacts present on one side only"),
    }
}

fn spec_for(system: SystemUnderTest, name: &str) -> ExperimentSpec {
    ExperimentSpec::paper_default(name, system, 10).scaled(4)
}

/// All three contenders (plus the multi-node deployments, whose brokers
/// and servlets land on *different* shards): shards ∈ {2, 4} vs serial.
#[test]
fn sharded_runs_match_serial_for_every_contender() {
    for (system, name) in [
        (SystemUnderTest::NaradaSingle, "shard/narada"),
        (SystemUnderTest::NaradaDbn { brokers: 3 }, "shard/dbn"),
        (SystemUnderTest::GridlogSingle, "shard/gridlog"),
        (SystemUnderTest::RgmaSingle, "shard/rgma"),
        (SystemUnderTest::RgmaDistributed, "shard/rgma-dist"),
    ] {
        let spec = spec_for(system, name);
        let serial = run_experiment(&spec);
        for shards in [2usize, 4] {
            let sharded = run_experiment(&spec.clone().sharded(shards));
            assert_equivalent(&serial, &sharded, &format!("{name}@{shards}"));
        }
    }
}

/// UDP loses messages through the jitter model; the loss pattern is
/// RNG-driven per connection, so shard-invariance of the *loss set* is
/// a strong check on the replicated-build RNG alignment.
#[test]
fn sharded_udp_loss_pattern_matches_serial() {
    let mut spec = spec_for(SystemUnderTest::NaradaSingle, "shard/udp");
    spec.transport = Transport::Udp;
    spec.ack_mode = AckMode::Client;
    let serial = run_experiment(&spec);
    for shards in [2usize, 4] {
        let sharded = run_experiment(&spec.clone().sharded(shards));
        assert_equivalent(&serial, &sharded, &format!("udp@{shards}"));
    }
}

/// Observation byte-identity under sharding: the full observability
/// stack (trace + profile + scope) exports byte-identical artifacts at
/// every shard count, and sharding itself never perturbs a plain run.
#[test]
fn observed_artifacts_are_byte_identical_across_shard_counts() {
    for (system, name) in [
        (SystemUnderTest::NaradaSingle, "shard/obs-narada"),
        (SystemUnderTest::GridlogSingle, "shard/obs-gridlog"),
        (SystemUnderTest::RgmaSingle, "shard/obs-rgma"),
    ] {
        let plain = spec_for(system, name);
        let observed = plain.clone().traced().profiled().scoped();
        let serial_plain = run_experiment(&plain);
        let serial_obs = run_experiment(&observed);
        for shards in [2usize, 4] {
            let sharded_plain = run_experiment(&plain.clone().sharded(shards));
            let sharded_obs = run_experiment(&observed.clone().sharded(shards));
            assert_equivalent(
                &serial_plain,
                &sharded_plain,
                &format!("{name}/plain@{shards}"),
            );
            assert_equivalent(&serial_obs, &sharded_obs, &format!("{name}/obs@{shards}"));
            // Observation must not perturb the sharded run either
            // (the serial-side equivalent lives in
            // simulation_invariants.rs).
            assert_eq!(
                sharded_plain.summary.rtt_mean_ms.to_bits(),
                sharded_obs.summary.rtt_mean_ms.to_bits(),
                "{name}@{shards}: observation perturbed the sharded run"
            );
        }
    }
}

/// Freshness plane under sharding: publishes and deliveries for one
/// reading can land on different shards (multi-node deployments), so
/// the keyed-union merge of the SLO collectors — and every derived
/// statistic down to the csv bytes — must be shard-invariant.
#[test]
fn slo_reports_are_shard_invariant() {
    for (system, name) in [
        (SystemUnderTest::NaradaDbn { brokers: 3 }, "shard/slo-dbn"),
        (SystemUnderTest::GridlogSingle, "shard/slo-gridlog"),
        (SystemUnderTest::RgmaDistributed, "shard/slo-rgma"),
    ] {
        let spec = spec_for(system, name).with_slo(gridmon::core::SloSpec::grid_default());
        let serial = run_experiment(&spec);
        assert!(serial.slo.is_some(), "{name}: SLO artifacts missing");
        for shards in [2usize, 4] {
            let sharded = run_experiment(&spec.clone().sharded(shards));
            assert_equivalent(&serial, &sharded, &format!("{name}@{shards}"));
        }
    }
    // A lossy transport exercises the `lost` accounting path too.
    let mut spec = spec_for(SystemUnderTest::NaradaSingle, "shard/slo-udp")
        .with_slo(gridmon::core::SloSpec::grid_default());
    spec.transport = Transport::Udp;
    spec.ack_mode = AckMode::Client;
    let serial = run_experiment(&spec);
    for shards in [2usize, 4] {
        let sharded = run_experiment(&spec.clone().sharded(shards));
        assert_equivalent(&serial, &sharded, &format!("slo-udp@{shards}"));
    }
}

/// Fault schedules under sharding: the injector replicas fire on every
/// shard, control messages ghost-drop to the owning shard, and the
/// merged degradation accounting equals the serial one exactly.
#[test]
fn faulted_sharded_runs_match_serial() {
    for scenario in ["broker-crash", "link-burst", "chaos"] {
        let spec = spec_for(SystemUnderTest::NaradaSingle, "shard/faults")
            .scaled(20)
            .with_faults(FaultSchedule::scenario(scenario).expect("known scenario"));
        let serial = run_experiment(&spec);
        for shards in [2usize, 4] {
            let sharded = run_experiment(&spec.clone().sharded(shards));
            assert_equivalent(&serial, &sharded, &format!("{scenario}@{shards}"));
        }
    }
}

// --- Randomized differential coverage -------------------------------

fn arb_system() -> impl Strategy<Value = SystemUnderTest> {
    prop_oneof![
        Just(SystemUnderTest::NaradaSingle),
        Just(SystemUnderTest::NaradaDbn { brokers: 3 }),
        Just(SystemUnderTest::RgmaSingle),
        Just(SystemUnderTest::RgmaDistributed),
        Just(SystemUnderTest::GridlogSingle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The event-level generalization of `parallel_matches_sequential`:
    /// random topology, transport, seed, and observation level — the
    /// shard count must never be observable in the results.
    #[test]
    fn shards_are_unobservable(
        system in arb_system(),
        transport in prop_oneof![Just(Transport::Tcp), Just(Transport::Udp)],
        client_ack in any::<bool>(),
        generators in 2usize..24,
        msgs in 1u32..5,
        seed in any::<u64>(),
        shards in prop_oneof![Just(2usize), Just(3), Just(4)],
        observed in any::<bool>(),
    ) {
        let mut spec = ExperimentSpec::paper_default("prop/shard", system, generators)
            .scaled(msgs);
        spec.transport = transport;
        spec.ack_mode = if client_ack { AckMode::Client } else { AckMode::Auto };
        spec.seed = seed;
        if observed {
            spec = spec.traced().profiled();
        }
        let serial = run_experiment(&spec);
        let sharded = run_experiment(&spec.clone().sharded(shards));
        assert_equivalent(&serial, &sharded, &format!("prop@{shards}"));
    }

    /// Random fault schedules: merged `FaultStats` and the loss pattern
    /// must be shard-invariant too.
    #[test]
    fn faulted_shards_are_unobservable(
        seed in any::<u64>(),
        scenario in prop_oneof![
            Just("broker-crash"),
            Just("registry-restart"),
            Just("link-burst"),
            Just("partition"),
            Just("slowdown"),
        ],
        shards in prop_oneof![Just(2usize), Just(4)],
    ) {
        let mut spec = spec_for(SystemUnderTest::GridlogSingle, "prop/shard-fault").scaled(12);
        spec.seed = seed;
        let spec = spec.with_faults(FaultSchedule::scenario(scenario).expect("known"));
        let serial = run_experiment(&spec);
        let sharded = run_experiment(&spec.clone().sharded(shards));
        assert_equivalent(&serial, &sharded, &format!("{scenario}@{shards}"));
    }
}
