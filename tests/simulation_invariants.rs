//! Property-based invariants over whole experiments: conservation,
//! determinism, and metric sanity for randomly drawn configurations.

use gridmon::core::{run_experiment, ExperimentSpec, SystemUnderTest};
use gridmon::jms::AckMode;
use gridmon::simnet::Transport;
use proptest::prelude::*;

fn arb_system() -> impl Strategy<Value = SystemUnderTest> {
    prop_oneof![
        Just(SystemUnderTest::NaradaSingle),
        Just(SystemUnderTest::NaradaDbn { brokers: 3 }),
        Just(SystemUnderTest::RgmaSingle),
        Just(SystemUnderTest::RgmaDistributed),
    ]
}

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        Just(Transport::Tcp),
        Just(Transport::Nio),
        Just(Transport::Udp),
    ]
}

prop_compose! {
    fn arb_spec()(
        system in arb_system(),
        transport in arb_transport(),
        client_ack in any::<bool>(),
        generators in 2usize..40,
        msgs in 1u32..5,
        seed in any::<u64>(),
    ) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_default("prop", system, generators).scaled(msgs);
        spec.transport = transport;
        spec.ack_mode = if client_ack { AckMode::Client } else { AckMode::Auto };
        spec.seed = seed;
        spec
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_sanity(spec in arb_spec()) {
        let r = run_experiment(&spec);
        let s = &r.summary;
        // Conservation: everything sent is either received or lost.
        prop_assert!(s.received <= s.sent, "received {} > sent {}", s.received, s.sent);
        prop_assert_eq!(s.sent, spec.total_messages() * u64::from(r.connected) / spec.generators as u64);
        // Only UDP may lose (R-GMA at these scales, with warm-up, is lossless).
        if spec.transport != Transport::Udp || spec.system.is_rgma() {
            prop_assert_eq!(s.received, s.sent, "lossless configuration lost messages");
        }
        // Metric sanity.
        prop_assert!(s.rtt_mean_ms >= 0.0);
        prop_assert!(s.rtt_stddev_ms >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.loss_rate));
        prop_assert!((0.0..=1.0).contains(&r.server_idle));
        for w in s.percentiles_ms.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "percentiles must be monotone");
        }
        // Decomposition adds up (when all phases were observed).
        if s.received > 0 && s.prt_mean_ms > 0.0 && s.srt_mean_ms > 0.0 {
            let total = s.prt_mean_ms + s.pt_mean_ms + s.srt_mean_ms;
            prop_assert!(
                (total - s.rtt_mean_ms).abs() < s.rtt_mean_ms * 0.05 + 0.1,
                "RTT {} != PRT+PT+SRT {}", s.rtt_mean_ms, total
            );
        }
    }

    #[test]
    fn determinism(spec in arb_spec()) {
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.received, b.summary.received);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.events, b.events);
    }
}
