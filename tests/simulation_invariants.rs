//! Property-based invariants over whole experiments: conservation,
//! determinism, and metric sanity for randomly drawn configurations.

use gridmon::core::{run_experiment, ExperimentSpec, SloSpec, SystemUnderTest};
use gridmon::jms::AckMode;
use gridmon::simcore::{SimDuration, SimTime};
use gridmon::simfault::{FaultKind, FaultSchedule};
use gridmon::simnet::Transport;
use gridmon::simos::NodeId;
use proptest::prelude::*;

fn arb_system() -> impl Strategy<Value = SystemUnderTest> {
    prop_oneof![
        Just(SystemUnderTest::NaradaSingle),
        Just(SystemUnderTest::NaradaDbn { brokers: 3 }),
        Just(SystemUnderTest::RgmaSingle),
        Just(SystemUnderTest::RgmaDistributed),
        Just(SystemUnderTest::GridlogSingle),
    ]
}

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        Just(Transport::Tcp),
        Just(Transport::Nio),
        Just(Transport::Udp),
    ]
}

prop_compose! {
    fn arb_spec()(
        system in arb_system(),
        transport in arb_transport(),
        client_ack in any::<bool>(),
        generators in 2usize..40,
        msgs in 1u32..5,
        seed in any::<u64>(),
    ) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_default("prop", system, generators).scaled(msgs);
        spec.transport = transport;
        spec.ack_mode = if client_ack { AckMode::Client } else { AckMode::Auto };
        spec.seed = seed;
        spec
    }
}

/// One arbitrary fault (a crash brings its paired restart along), timed
/// so it can land inside the short publishing window of the scaled-down
/// specs above. Events firing past the horizon are legal — they simply
/// never trigger.
fn arb_fault() -> impl Strategy<Value = Vec<(u64, FaultKind)>> {
    let at = 10u64..80;
    prop_oneof![
        (at.clone(), 1u64..10, 1u32..10).prop_map(|(at, dur, prob)| {
            vec![(
                at,
                FaultKind::LinkLossBurst {
                    duration: SimDuration::from_secs(dur),
                    loss_prob: f64::from(prob) / 20.0,
                    node: None,
                },
            )]
        }),
        (at.clone(), 1u64..10).prop_map(|(at, dur)| {
            vec![(
                at,
                FaultKind::Partition {
                    duration: SimDuration::from_secs(dur),
                    group: vec![NodeId(0)],
                },
            )]
        }),
        // Crash with a scheduled restart: the paired case is the
        // recovery-interesting one; unpaired crashes exhaust the
        // reconnect budget, which the conformance suite covers.
        (at.clone(), 1u64..20).prop_map(|(at, down)| {
            vec![
                (at, FaultKind::BrokerCrash { broker: 0 }),
                (at + down, FaultKind::BrokerRestart { broker: 0 }),
            ]
        }),
        at.clone()
            .prop_map(|at| vec![(at, FaultKind::RegistryRestart)]),
        (at.clone(), 2u64..8).prop_map(|(at, dur)| {
            vec![(
                at,
                FaultKind::ServletStall {
                    node: NodeId(0),
                    duration: SimDuration::from_secs(dur),
                },
            )]
        }),
        (at, 2u64..15, 2u32..5).prop_map(|(at, dur, factor)| {
            vec![(
                at,
                FaultKind::NodeSlowdown {
                    node: NodeId(0),
                    duration: SimDuration::from_secs(dur),
                    factor: f64::from(factor),
                },
            )]
        }),
    ]
}

prop_compose! {
    /// 1–3 arbitrary faults merged into one schedule.
    fn arb_fault_schedule()(
        faults in proptest::collection::vec(arb_fault(), 1..3),
    ) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        for (at, kind) in faults.into_iter().flatten() {
            schedule = schedule.at(SimTime::from_secs(at), kind);
        }
        schedule
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_sanity(spec in arb_spec()) {
        let r = run_experiment(&spec);
        let s = &r.summary;
        // Conservation: everything sent is either received or lost.
        prop_assert!(s.received <= s.sent, "received {} > sent {}", s.received, s.sent);
        prop_assert_eq!(s.sent, spec.total_messages() * u64::from(r.connected) / spec.generators as u64);
        // Only UDP may lose (R-GMA at these scales, with warm-up, is
        // lossless, and gridlog always runs over TCP).
        if spec.transport != Transport::Udp
            || spec.system.is_rgma()
            || spec.system == SystemUnderTest::GridlogSingle
        {
            prop_assert_eq!(s.received, s.sent, "lossless configuration lost messages");
        }
        // Metric sanity.
        prop_assert!(s.rtt_mean_ms >= 0.0);
        prop_assert!(s.rtt_stddev_ms >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.loss_rate));
        prop_assert!((0.0..=1.0).contains(&r.server_idle));
        for w in s.percentiles_ms.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "percentiles must be monotone");
        }
        // Decomposition adds up (when all phases were observed).
        if s.received > 0 && s.prt_mean_ms > 0.0 && s.srt_mean_ms > 0.0 {
            let total = s.prt_mean_ms + s.pt_mean_ms + s.srt_mean_ms;
            prop_assert!(
                (total - s.rtt_mean_ms).abs() < s.rtt_mean_ms * 0.05 + 0.1,
                "RTT {} != PRT+PT+SRT {}", s.rtt_mean_ms, total
            );
        }
    }

    #[test]
    fn determinism(spec in arb_spec()) {
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.received, b.summary.received);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.events, b.events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation and determinism under arbitrary fault schedules:
    /// the same seed must produce the same faults and the same
    /// degradation accounting, and nothing may be delivered that was
    /// never sent.
    #[test]
    fn faulted_runs_conserve_and_replay(
        spec in arb_spec(),
        schedule in arb_fault_schedule(),
    ) {
        let spec = spec.with_faults(schedule.clone());
        let a = run_experiment(&spec);
        // Conservation: after the drain, every sent message is either
        // delivered, attributably dropped, or still queued behind a
        // slowdown — never duplicated into view.
        prop_assert!(a.summary.received <= a.summary.sent,
            "received {} > sent {}", a.summary.received, a.summary.sent);
        let f = a.fault_stats.expect("faulted run reports stats");
        prop_assert!(f.reconnects <= f.reconnect_attempts);
        prop_assert!(f.injected <= schedule.events.len() as u64,
            "more faults fired than scheduled");
        // Determinism: same seed ⇒ same faults ⇒ identical run,
        // including the per-cause degradation accounting.
        let b = run_experiment(&spec);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.received, b.summary.received);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.fault_stats, b.fault_stats);
    }

    /// Zero overhead when off: a profiled run must be observationally
    /// identical to an unprofiled one — same events, bit-identical RTTs,
    /// byte-identical trace exports. The profiler only ever *reads* the
    /// effective cost the CPU model already computed (`execute_metered`
    /// diffs `total_work`), so turning it on may not move a single event.
    #[test]
    fn profiled_runs_are_byte_identical_to_plain(spec in arb_spec()) {
        let plain = spec.clone().traced();
        let profiled = spec.traced().profiled();
        let a = run_experiment(&plain);
        let b = run_experiment(&profiled);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.received, b.summary.received);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.summary.rtt_stddev_ms.to_bits(), b.summary.rtt_stddev_ms.to_bits());
        prop_assert_eq!(a.events, b.events, "profiling may not add or move kernel events");
        prop_assert!(a.profile.is_none(), "plain run must not carry profile artifacts");
        let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
        prop_assert_eq!(&ta.jsonl, &tb.jsonl, "JSONL exports must be byte-identical");
        prop_assert_eq!(&ta.chrome, &tb.chrome, "Chrome exports must be byte-identical");
    }

    /// Zero interference from wall-clock scoping: a scoped run must be
    /// observationally identical to an unscoped one — same events,
    /// bit-identical RTTs, byte-identical trace AND profile exports.
    /// The hot-path probes only read the monotonic clock; they never
    /// touch the RNG, the event queue, or actor state, so arming them
    /// may not move a single event. The always-on kernel accounting is
    /// identical on both sides for the same reason.
    #[test]
    fn scoped_runs_are_byte_identical_to_plain(spec in arb_spec()) {
        let plain = spec.clone().traced().profiled();
        let scoped = spec.traced().profiled().scoped();
        let a = run_experiment(&plain);
        let b = run_experiment(&scoped);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.received, b.summary.received);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.summary.rtt_stddev_ms.to_bits(), b.summary.rtt_stddev_ms.to_bits());
        prop_assert_eq!(a.events, b.events, "scoping may not add or move kernel events");
        prop_assert_eq!(&a.kernel, &b.kernel,
            "kernel event accounting must not change under scoping");
        prop_assert!(a.scope.is_none(), "plain run must not carry hot-path artifacts");
        let scope = b.scope.expect("scoped run carries hot-path artifacts");
        let parsed = gridmon::simscope::HotpathReport::parse(&scope.json)
            .expect("exported hotpath JSON parses");
        prop_assert_eq!(parsed.to_json(), scope.json, "hotpath JSON re-generates byte-stably");
        let dispatch = scope.report.site("kernel.dispatch").expect("dispatch site present");
        prop_assert_eq!(dispatch.count, a.events, "one dispatch timing per kernel event");
        let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
        prop_assert_eq!(&ta.jsonl, &tb.jsonl, "JSONL exports must be byte-identical");
        prop_assert_eq!(&ta.chrome, &tb.chrome, "Chrome exports must be byte-identical");
        let (pa, pb) = (a.profile.expect("profiled"), b.profile.expect("profiled"));
        prop_assert_eq!(&pa.collapsed, &pb.collapsed,
            "virtual-time flamegraphs must be byte-identical");
        prop_assert_eq!(&pa.metrics_csv, &pb.metrics_csv,
            "metric time series must be byte-identical");
    }

    /// Zero perturbation from the freshness plane: an SLO-enabled run
    /// must be observationally identical to a plain one on every
    /// pre-existing artifact — same events, bit-identical RTTs,
    /// byte-identical trace exports. The collector records publish and
    /// delivery instants out of band (like the trace stamps, zero wire
    /// bytes) and derives every statistic post-merge, so arming it may
    /// not move a single kernel event.
    #[test]
    fn slo_runs_are_byte_identical_to_plain(spec in arb_spec()) {
        let plain = spec.clone().traced();
        let slo = spec.traced().with_slo(SloSpec::grid_default());
        let a = run_experiment(&plain);
        let b = run_experiment(&slo);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.received, b.summary.received);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.summary.rtt_stddev_ms.to_bits(), b.summary.rtt_stddev_ms.to_bits());
        prop_assert_eq!(a.events, b.events, "SLO tracking may not add or move kernel events");
        prop_assert!(a.slo.is_none(), "plain run must not carry SLO artifacts");
        let s = b.slo.expect("SLO run carries artifacts");
        prop_assert_eq!(s.report.stamp_disagreements, 0,
            "carried publish stamps disagree with recorded publish instants");
        // Accounting closes: every published reading is exactly one of
        // on-time, late, or lost.
        prop_assert_eq!(
            s.report.on_time + s.report.late + s.report.lost,
            s.report.published,
            "SLO accounting does not close"
        );
        prop_assert!(s.csv.starts_with("t_s,metric,value"));
        let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
        prop_assert_eq!(&ta.jsonl, &tb.jsonl, "JSONL exports must be byte-identical");
        prop_assert_eq!(&ta.chrome, &tb.chrome, "Chrome exports must be byte-identical");
    }

    /// Profiler conservation: the attributed self-time table must sum to
    /// exactly the kernel's total submitted CPU work — every microsecond
    /// any CPU executed is charged to exactly one component (same spirit
    /// as `telemetry::Conservation` for messages).
    #[test]
    fn profiler_attributes_all_cpu_work(spec in arb_spec()) {
        let r = run_experiment(&spec.profiled());
        let p = r.profile.expect("profiled run carries artifacts");
        prop_assert_eq!(
            p.unattributed.as_micros(), 0,
            "unattributed CPU work: {} of {} µs (a charge site is missing)",
            p.unattributed.as_micros(), p.kernel_busy.as_micros()
        );
        prop_assert_eq!(p.attributed.as_micros(), p.kernel_busy.as_micros());
        // The rendered table carries the conservation evidence: a TOTAL
        // row equal to the kernel busy time.
        prop_assert!(p.table.contains("TOTAL"), "table has a TOTAL footer");
        // The metrics plane sampled something on the vmstat cadence.
        prop_assert!(p.metrics_csv.starts_with("t_s,metric,value"));
        prop_assert!(!p.prometheus.is_empty());
    }

    /// gridlog byte-identity (the dedicated guard over the new crate's
    /// instrumentation sites): a same-seed gridlog run must be
    /// bit-identical with trace, profile, and scope all enabled vs.
    /// plain, and the trace decomposition must agree with the
    /// independent `RttCollector` instants on every probe.
    #[test]
    fn gridlog_runs_byte_identical_under_observation(
        generators in 2usize..30,
        msgs in 1u32..5,
        seed in any::<u64>(),
    ) {
        let mut spec = ExperimentSpec::paper_default(
            "prop/gridlog",
            SystemUnderTest::GridlogSingle,
            generators,
        )
        .scaled(msgs);
        spec.seed = seed;
        let plain = run_experiment(&spec);
        let traced = run_experiment(&spec.clone().traced());
        let observed = run_experiment(&spec.clone().traced().profiled().scoped());
        // Measurements are bit-identical across all three observation
        // levels (the TraceSampler adds its own timer events, so event
        // counts are only comparable at equal trace settings).
        for r in [&traced, &observed] {
            prop_assert_eq!(plain.summary.sent, r.summary.sent);
            prop_assert_eq!(plain.summary.received, r.summary.received);
            prop_assert_eq!(
                plain.summary.rtt_mean_ms.to_bits(),
                r.summary.rtt_mean_ms.to_bits()
            );
            prop_assert_eq!(
                plain.summary.rtt_stddev_ms.to_bits(),
                r.summary.rtt_stddev_ms.to_bits()
            );
        }
        prop_assert_eq!(traced.events, observed.events,
            "profiling/scoping may not add or move kernel events");
        prop_assert_eq!(&traced.kernel, &observed.kernel);
        // The append-only log loses nothing fault-free.
        prop_assert_eq!(plain.summary.received, plain.summary.sent);
        let t = observed.trace.expect("traced run carries artifacts");
        prop_assert!(t.disagreements.is_empty(),
            "trace/RttCollector cross-check failed: {:?}", t.disagreements);
        let p = observed.profile.expect("profiled run carries artifacts");
        prop_assert_eq!(p.unattributed.as_micros(), 0,
            "gridlog left CPU work unattributed");
        prop_assert!(p.table.contains("gridlog."),
            "profile table attributes gridlog components");
    }

    /// An empty schedule must be indistinguishable from a build without
    /// fault support: no injector service, no recovery policies, and
    /// byte-identical trace exports (the determinism guard over the
    /// fault probes sprinkled through simnet/narada/rgma).
    #[test]
    fn empty_schedule_is_byte_identical_to_no_faults(spec in arb_spec()) {
        let plain = spec.clone().traced();
        let gated = spec.traced().with_faults(FaultSchedule::new());
        let a = run_experiment(&plain);
        let b = run_experiment(&gated);
        prop_assert_eq!(a.summary.sent, b.summary.sent);
        prop_assert_eq!(a.summary.rtt_mean_ms.to_bits(), b.summary.rtt_mean_ms.to_bits());
        prop_assert_eq!(a.events, b.events);
        prop_assert!(b.fault_stats.is_none(), "no injector may be registered");
        let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
        prop_assert_eq!(&ta.jsonl, &tb.jsonl, "JSONL exports must be byte-identical");
        prop_assert_eq!(&ta.chrome, &tb.chrome, "Chrome exports must be byte-identical");
        prop_assert!(!ta.jsonl.contains("fault"),
            "no-fault exports must not mention fault counters");
    }
}
