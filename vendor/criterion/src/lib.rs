//! Minimal offline stand-in for the [`criterion`] crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId::from_parameter`, and `black_box` — backed by a simple
//! wall-clock sampler. No statistical analysis, HTML reports, or
//! baselines: each bench prints its per-iteration mean and sample
//! count, which is enough to compare hot paths before/after a change.
//!
//! [`criterion`]: https://docs.rs/criterion

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-bench time budget. Samples stop early once this is spent, so
/// slow benches (whole-experiment runs) still finish promptly.
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value (`group/value`).
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId {
            name: p.to_string(),
        }
    }

    /// Id with an explicit function name and parameter.
    pub fn new(function: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{p}", function.into()),
        }
    }
}

/// Anything usable as a bench id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the printed name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Passed to the bench closure; times the measured routine.
pub struct Bencher {
    samples: u64,
    total: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up call.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per bench (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.into_name();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
        };
        let t0 = Instant::now();
        f(&mut b);
        let wall = t0.elapsed();
        self.criterion
            .report(&format!("{}/{name}", self.name), &b, wall);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (reporting already happened per bench).
    pub fn finish(&mut self) {}
}

/// Entry point handed to each bench function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters by bench name; cargo's
        // own flags (`--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Open a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: 20,
            total: Duration::ZERO,
        };
        let t0 = Instant::now();
        f(&mut b);
        let wall = t0.elapsed();
        self.report(name, &b, wall);
        self
    }

    fn report(&self, name: &str, b: &Bencher, wall: Duration) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        // `iter` may have stopped early on the time budget; infer the
        // sample count from the recorded total vs. wall time instead of
        // trusting the configured size.
        let samples = if b.total.is_zero() {
            0
        } else {
            ((b.samples as f64) * (b.total.as_secs_f64() / wall.as_secs_f64().max(1e-9)))
                .round()
                .clamp(1.0, b.samples as f64) as u64
        };
        let mean_ns = if samples == 0 {
            0.0
        } else {
            b.total.as_secs_f64() * 1e9 / samples as f64
        };
        let (value, unit) = if mean_ns >= 1e9 {
            (mean_ns / 1e9, "s")
        } else if mean_ns >= 1e6 {
            (mean_ns / 1e6, "ms")
        } else if mean_ns >= 1e3 {
            (mean_ns / 1e3, "µs")
        } else {
            (mean_ns, "ns")
        };
        println!("{name:<48} {value:>10.3} {unit}/iter ({samples} samples)");
    }
}

/// Bundle bench functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        // Warm-up + up to 5 timed samples.
        assert!(calls >= 2);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
    }
}
