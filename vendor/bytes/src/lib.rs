//! Minimal offline stand-in for the [`bytes`] crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the API surface the workspace uses: a growable
//! write buffer ([`BytesMut`]), a cheaply-cloneable frozen view
//! ([`Bytes`]), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the codec needs. Semantics match the real
//! crate for this subset (consuming reads advance the view; `freeze`
//! and `slice` share the underlying allocation).
//!
//! [`bytes`]: https://docs.rs/bytes

use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Remaining length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same allocation. `range` is relative to
    /// the current view; panics if out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// A growable byte buffer for encoding.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Read cursor over a byte buffer (the subset the codec uses; all
/// multi-byte accessors are little-endian, matching the wire format).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `len` bytes into an owned buffer. Panics if short.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Consume a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;
    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        let n = std::mem::size_of::<$ty>();
        let mut raw = [0u8; std::mem::size_of::<$ty>()];
        raw.copy_from_slice($self.take(n));
        <$ty>::from_le_bytes(raw)
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes::from(self.take(len).to_vec())
    }
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }
    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }
    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }
    fn get_i32_le(&mut self) -> i32 {
        get_le!(self, i32)
    }
    fn get_i64_le(&mut self) -> i64 {
        get_le!(self, i64)
    }
    fn get_f32_le(&mut self) -> f32 {
        get_le!(self, f32)
    }
    fn get_f64_le(&mut self) -> f64 {
        get_le!(self, f64)
    }
}

/// Write cursor (little-endian accessors, matching the wire format).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(u64::MAX - 1);
        b.put_i32_le(-5);
        b.put_i64_le(i64::MIN);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), i64::MIN);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..2);
        assert_eq!(s2.to_vec(), vec![3]);
    }
}
