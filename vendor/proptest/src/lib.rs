//! Minimal offline stand-in for the [`proptest`] crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of proptest the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`
//! / `prop_filter` / `prop_recursive` / `boxed`, range and tuple and
//! `&str`-regex strategies, `collection::{vec, btree_map}`,
//! `option::of`, `num::{f32,f64}::NORMAL`, `string::string_regex`, and
//! the `proptest!` / `prop_compose!` / `prop_oneof!` / `prop_assert*!`
//! / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   the panic message (cases are `Debug`-free, so the assertion text
//!   itself must carry context) and the case number, which is enough to
//!   re-run deterministically.
//! * **Deterministic seeding.** The RNG seed derives from the test's
//!   `module_path!()::name`, so every run of the suite generates the
//!   same cases — matching this repo's determinism-first philosophy.
//! * The regex generator supports the character-class subset the tests
//!   use (`[a-z0-9_]{lo,hi}` style concatenations), not full regex.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. `prop_assume!` failed); it is
        /// retried with fresh inputs and not counted.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Build a rejection with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `n` cases.
        pub fn with_cases(n: u32) -> Self {
            Config { cases: n }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`; `hi > lo` required.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(hi > lo);
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// True with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one property test: generate inputs and run `case` until
    /// `config.cases` cases are accepted; panic on the first failure.
    pub fn run_cases(
        name: &str,
        config: Config,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let mut rng = TestRng::new(fnv1a(name));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(100).max(1000);
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "{name}: too many rejected cases \
                             ({rejected} rejects for {accepted} accepted)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {accepted} failed: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred` (regenerates on miss).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Build a recursive strategy: values are either from `self`
        /// (the leaf) or from `recurse` applied to the strategy built
        /// so far, nested up to `depth` levels.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }

        /// Erase the concrete type behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 10000 straight values",
                self.reason
            );
        }
    }

    trait DynStrategy<T> {
        fn dyn_new_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Union over the given alternatives (at least one).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let ix = rng.range_u64(0, self.options.len() as u64) as usize;
            self.options[ix].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $ty) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// `&str` strategies are regex patterns (character-class subset).
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
                .new_value(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Strategy backed by a generation function (used by `any` and the
    /// special-value generators).
    #[derive(Clone)]
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
    }

    impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
        /// Wrap a generation function.
        pub fn new(f: F) -> Self {
            FnStrategy { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{FnStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    // Bias ~1/8 of draws toward boundary values, where
                    // integer bugs live.
                    if rng.chance(0.125) {
                        let edges = [0 as $ty, 1 as $ty, <$ty>::MAX, <$ty>::MIN];
                        edges[rng.range_u64(0, edges.len() as u64) as usize]
                    } else {
                        rng.next_u64() as $ty
                    }
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy for any `Arbitrary` type (`any::<T>()`).
    pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> {
        FnStrategy::new(T::arbitrary_value)
    }
}

pub mod collection {
    use crate::strategy::{FnStrategy, Strategy};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Vec of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: Range<usize>,
    ) -> impl Strategy<Value = Vec<S::Value>> {
        FnStrategy::new(move |rng| {
            let len = rng.range_u64(size.start as u64, size.end as u64) as usize;
            (0..len).map(|_| element.new_value(rng)).collect()
        })
    }

    /// BTreeMap with keys/values from the given strategies and a target
    /// length drawn from `size`. Duplicate keys overwrite, so when the
    /// key space is smaller than the target the map saturates (matching
    /// real proptest's best-effort behaviour).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: Range<usize>,
    ) -> impl Strategy<Value = BTreeMap<K::Value, V::Value>>
    where
        K::Value: Ord,
    {
        FnStrategy::new(move |rng| {
            let target = rng.range_u64(size.start as u64, size.end as u64) as usize;
            let mut m = BTreeMap::new();
            let mut attempts = 0usize;
            while m.len() < target && attempts < target * 20 + 50 {
                m.insert(keys.new_value(rng), values.new_value(rng));
                attempts += 1;
            }
            m
        })
    }
}

pub mod option {
    use crate::strategy::{FnStrategy, Strategy};

    /// `Option` that is `Some` about half the time.
    pub fn of<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
        FnStrategy::new(move |rng| {
            if rng.chance(0.5) {
                Some(inner.new_value(rng))
            } else {
                None
            }
        })
    }
}

pub mod num {
    macro_rules! normal_float {
        ($mod_name:ident, $ty:ty, $exp_range:expr) => {
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy over finite, normal (non-zero, non-subnormal)
                /// floats.
                #[derive(Debug, Clone, Copy)]
                pub struct Normal;

                /// The canonical instance, mirroring `proptest::num::*::NORMAL`.
                pub const NORMAL: Normal = Normal;

                impl Strategy for Normal {
                    type Value = $ty;
                    fn new_value(&self, rng: &mut TestRng) -> $ty {
                        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                        let mantissa = 1.0 + rng.next_f64() as $ty;
                        let exp = rng.range_u64(0, ($exp_range * 2 + 1) as u64) as i32
                            - $exp_range as i32;
                        let v = sign as $ty * mantissa * (2.0 as $ty).powi(exp);
                        debug_assert!(v.is_normal());
                        v
                    }
                }
            }
        };
    }
    normal_float!(f32, f32, 30);
    normal_float!(f64, f64, 60);
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One `[class]{lo,hi}` element of a pattern.
    #[derive(Debug, Clone)]
    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generates strings matching a character-class regex pattern:
    /// concatenations of `[class]`, `[class]{n}`, and `[class]{lo,hi}`
    /// (plus bare literal characters). This is the subset the
    /// workspace's tests use.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        elements: Vec<Element>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for el in &self.elements {
                let n = if el.max > el.min {
                    rng.range_u64(el.min as u64, el.max as u64 + 1) as usize
                } else {
                    el.min
                };
                for _ in 0..n {
                    let ix = rng.range_u64(0, el.chars.len() as u64) as usize;
                    out.push(el.chars[ix]);
                }
            }
            out
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<Vec<char>, String> {
        let mut set = Vec::new();
        loop {
            let c = chars.next().ok_or("unterminated character class")?;
            if c == ']' {
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                return Ok(set);
            }
            let c = if c == '\\' {
                chars.next().ok_or("dangling escape in class")?
            } else {
                c
            };
            // `x-y` is a range unless `-` is last (then it's literal).
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => set.push(c),
                    Some(&hi) => {
                        chars.next();
                        chars.next();
                        if (hi as u32) < (c as u32) {
                            return Err(format!("inverted range {c}-{hi}"));
                        }
                        for u in (c as u32)..=(hi as u32) {
                            set.push(char::from_u32(u).ok_or("bad range codepoint")?);
                        }
                    }
                }
            } else {
                set.push(c);
            }
        }
    }

    fn parse_count(
        chars: &mut std::iter::Peekable<std::str::Chars>,
    ) -> Result<(usize, usize), String> {
        // Caller consumed `{`.
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|_| "bad repeat lower bound")?,
                        hi.parse().map_err(|_| "bad repeat upper bound")?,
                    ),
                    None => {
                        let n = body.parse().map_err(|_| "bad repeat count")?;
                        (n, n)
                    }
                };
                if hi < lo {
                    return Err(format!("inverted repeat {{{lo},{hi}}}"));
                }
                return Ok((lo, hi));
            }
            body.push(c);
        }
        Err("unterminated repeat".into())
    }

    /// Build a string strategy from a pattern. Errors on syntax outside
    /// the supported character-class subset.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => vec![chars.next().ok_or("dangling escape")?],
                '{' | '}' | ']' | '(' | ')' | '|' | '*' | '+' | '?' | '^' | '$' | '.' => {
                    return Err(format!("unsupported regex syntax at {c:?} in {pattern:?}"))
                }
                lit => vec![lit],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_count(&mut chars)?
            } else {
                (1, 1)
            };
            elements.push(Element {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { elements })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_subset_generates_matching_strings() {
            let s = string_regex("[a-z][a-z0-9_]{0,11}").unwrap();
            let mut rng = TestRng::new(7);
            for _ in 0..200 {
                let v = s.new_value(&mut rng);
                assert!(!v.is_empty() && v.len() <= 12, "{v:?}");
                let mut cs = v.chars();
                assert!(cs.next().unwrap().is_ascii_lowercase());
                assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            }
        }

        #[test]
        fn printable_ascii_range() {
            let s = string_regex("[ -~]{0,16}").unwrap();
            let mut rng = TestRng::new(9);
            for _ in 0..100 {
                for c in s.new_value(&mut rng).chars() {
                    assert!((' '..='~').contains(&c));
                }
            }
        }

        #[test]
        fn trailing_dash_is_literal() {
            let s = string_regex("[a:-]{1,8}").unwrap();
            let mut rng = TestRng::new(3);
            let mut saw_dash = false;
            for _ in 0..300 {
                for c in s.new_value(&mut rng).chars() {
                    assert!(matches!(c, 'a' | ':' | '-'), "{c:?}");
                    saw_dash |= c == '-';
                }
            }
            assert!(saw_dash);
        }

        #[test]
        fn rejects_unsupported_syntax() {
            assert!(string_regex("a|b").is_err());
            assert!(string_regex("[a-z]*").is_err());
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `fn name(pat in strategy, ..)`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __strats = ($($strat,)+);
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    __cfg,
                    |__rng| {
                        let ($($pat,)+) =
                            $crate::strategy::Strategy::new_value(&__strats, __rng);
                        let __res: $crate::test_runner::TestCaseResult =
                            (|| { $body Ok(()) })();
                        __res
                    },
                );
            }
        )*
    };
}

/// Define a function returning a composite strategy from named
/// sub-strategies (the `fn name(args..)(bindings..) -> T { body }` form).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            let __strats = ($($strat,)+);
            $crate::strategy::Strategy::prop_map(__strats, move |($($pat,)+)| $body)
        }
    };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __a
            )));
        }
    }};
}

/// Reject the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = Strategy::new_value(&(-100i64..100), &mut rng);
            assert!((-100..100).contains(&v));
            let u = Strategy::new_value(&(0u16..=7), &mut rng);
            assert!(u <= 7);
            let f = Strategy::new_value(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        let leaf = (0i64..10).prop_map(|n| format!("{n}")).boxed();
        let s = leaf.prop_recursive(3, 24, 4, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(crate::arbitrary::any::<u64>(), 1..20);
        let a: Vec<Vec<u64>> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| s.new_value(&mut rng)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| s.new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(mut v in crate::collection::vec(0u64..100, 0..10), flip in any::<bool>()) {
            if flip {
                v.reverse();
            }
            prop_assert!(v.len() < 10);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn assume_filters(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
